(* Unit and property tests for the Stdx utility library. *)

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let test_vec_basic () =
  let v = Stdx.Vec.create ~dummy:0 () in
  Alcotest.(check bool) "empty" true (Stdx.Vec.is_empty v);
  for i = 0 to 99 do
    Stdx.Vec.push v i
  done;
  check_int "length" 100 (Stdx.Vec.length v);
  check_int "get 0" 0 (Stdx.Vec.get v 0);
  check_int "get 99" 99 (Stdx.Vec.get v 99);
  check_int "last" 99 (Stdx.Vec.last v);
  Stdx.Vec.set v 5 500;
  check_int "set/get" 500 (Stdx.Vec.get v 5)

let test_vec_pop () =
  let v = Stdx.Vec.create ~dummy:0 () in
  Stdx.Vec.push v 1;
  Stdx.Vec.push v 2;
  check_int "pop" 2 (Stdx.Vec.pop v);
  check_int "length after pop" 1 (Stdx.Vec.length v);
  check_int "pop again" 1 (Stdx.Vec.pop v);
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty")
    (fun () -> ignore (Stdx.Vec.pop v))

let test_vec_bounds () =
  let v = Stdx.Vec.create ~dummy:0 () in
  Stdx.Vec.push v 42;
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Stdx.Vec.get v 1));
  Alcotest.check_raises "negative index"
    (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Stdx.Vec.get v (-1)))

let test_vec_iter_fold () =
  let v = Stdx.Vec.of_array ~dummy:0 [| 1; 2; 3; 4 |] in
  let sum = Stdx.Vec.fold_left ( + ) 0 v in
  check_int "fold sum" 10 sum;
  let count = ref 0 in
  Stdx.Vec.iteri (fun i x -> count := !count + (i * x)) v;
  check_int "iteri" (0 + 2 + 6 + 12) !count;
  Stdx.Vec.clear v;
  check_int "clear" 0 (Stdx.Vec.length v)

let test_vec_roundtrip =
  QCheck.Test.make ~name:"vec push/to_array roundtrip" ~count:200
    QCheck.(list int)
    (fun xs ->
      let v = Stdx.Vec.create ~dummy:0 () in
      List.iter (Stdx.Vec.push v) xs;
      Stdx.Vec.to_array v = Array.of_list xs)

let test_vec_iter_roundtrip =
  QCheck.Test.make ~name:"vec push/iteri roundtrip" ~count:200
    QCheck.(list int)
    (fun xs ->
      let v = Stdx.Vec.create ~dummy:0 () in
      List.iter (Stdx.Vec.push v) xs;
      let seen = ref [] and expected_i = ref 0 and ordered = ref true in
      Stdx.Vec.iteri
        (fun i x ->
          if i <> !expected_i then ordered := false;
          incr expected_i;
          seen := x :: !seen)
        v;
      !ordered && List.rev !seen = xs)

let test_vec_growth =
  (* Starting from capacity 1 forces a doubling at every power of two;
     contents and order must survive each one. *)
  QCheck.Test.make ~name:"vec growth preserves contents" ~count:200
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (xs, ys) ->
      let v = Stdx.Vec.create ~capacity:1 ~dummy:(-1) () in
      List.iter (Stdx.Vec.push v) xs;
      let popped = List.map (fun _ -> Stdx.Vec.pop v) xs in
      List.iter (Stdx.Vec.push v) ys;
      popped = List.rev xs
      && Stdx.Vec.length v = List.length ys
      && Stdx.Vec.to_array v = Array.of_list ys)

let test_means () =
  check_float "mean" 2. (Stdx.Stats.mean [ 1.; 2.; 3. ]);
  check_float "harmonic of equal" 5. (Stdx.Stats.harmonic_mean [ 5.; 5. ]);
  check_float "harmonic 1,2" (4. /. 3.)
    (Stdx.Stats.harmonic_mean [ 1.; 2. ]);
  check_float "geometric" 2. (Stdx.Stats.geometric_mean [ 1.; 4. ]);
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty")
    (fun () -> ignore (Stdx.Stats.mean []));
  Alcotest.check_raises "non-positive harmonic"
    (Invalid_argument "Stats.harmonic_mean: non-positive") (fun () ->
      ignore (Stdx.Stats.harmonic_mean [ 1.; 0. ]))

let test_mean_inequality =
  QCheck.Test.make ~name:"harmonic <= geometric <= arithmetic" ~count:200
    QCheck.(list_of_size Gen.(1 -- 20) (float_range 0.001 1000.))
    (fun xs ->
      let h = Stdx.Stats.harmonic_mean xs in
      let g = Stdx.Stats.geometric_mean xs in
      let a = Stdx.Stats.mean xs in
      h <= g +. 1e-6 && g <= a +. 1e-6)

let test_percentile () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "median" 3. (Stdx.Stats.percentile 0.5 xs);
  check_float "min" 1. (Stdx.Stats.percentile 0. xs);
  check_float "max" 5. (Stdx.Stats.percentile 1. xs);
  check_float "p25" 2. (Stdx.Stats.percentile 0.25 xs)

let test_cumulative () =
  let c = Stdx.Stats.cumulative [ (3, 1); (1, 2); (2, 1) ] in
  Alcotest.(check (list (pair int (float 1e-9))))
    "cdf"
    [ (1, 0.5); (2, 0.75); (3, 1.0) ]
    c;
  Alcotest.(check (list (pair int (float 1e-9)))) "empty" []
    (Stdx.Stats.cumulative [])

let suite =
  [ Alcotest.test_case "vec basic" `Quick test_vec_basic;
    Alcotest.test_case "vec pop" `Quick test_vec_pop;
    Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
    Alcotest.test_case "vec iter/fold" `Quick test_vec_iter_fold;
    QCheck_alcotest.to_alcotest test_vec_roundtrip;
    QCheck_alcotest.to_alcotest test_vec_iter_roundtrip;
    QCheck_alcotest.to_alcotest test_vec_growth;
    Alcotest.test_case "means" `Quick test_means;
    QCheck_alcotest.to_alcotest test_mean_inequality;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "cumulative" `Quick test_cumulative ]

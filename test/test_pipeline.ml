(* The streaming fan-out pipeline: advancing many machine states over
   one trace pass (Analyze.run_many), or over a live VM execution with
   no materialized trace (Harness.Run.exec with stream on), must be
   bit-identical to independent single-machine runs — and the harness
   must do exactly one execution and one analyzer pass per prepared
   workload. *)

let machines = Ilp.Machine.all_paper

(* Run one workload through the streaming pipeline, unwrapping the
   single item the unified entry point returns. *)
let run_stream ?fuel w specs =
  match
    Harness.Run.exec (Harness.Run.config ?fuel ~stream:true specs) [ w ]
  with
  | Ok [ { Harness.Run.it_outcome = Ok rs; _ } ] -> rs
  | Ok [ { Harness.Run.it_outcome = Error e; _ } ] ->
    Alcotest.fail (Pipeline_error.to_string e)
  | Ok _ -> Alcotest.fail "one workload, one item"
  | Error e -> Alcotest.fail (Pipeline_error.to_string e)

let pp_result fmt (r : Ilp.Analyze.result) =
  Format.fprintf fmt
    "{machine=%s; counted=%d; seq=%d; cycles=%d; par=%.6f; dyn=%d; mis=%d; \
     segs=%d}"
    r.machine r.counted r.seq_cycles r.cycles r.parallelism r.dyn_branches
    r.mispredicts (Array.length r.segments)

let equal_result (a : Ilp.Analyze.result) (b : Ilp.Analyze.result) =
  a.machine = b.machine && a.counted = b.counted
  && a.seq_cycles = b.seq_cycles && a.cycles = b.cycles
  && a.parallelism = b.parallelism && a.dyn_branches = b.dyn_branches
  && a.mispredicts = b.mispredicts && a.segments = b.segments

let result_t = Alcotest.testable pp_result equal_result

(* run_many vs seven independent runs, over one materialized trace. *)
let test_run_many_golden wname () =
  let w = Workloads.Registry.find wname in
  let p = Harness.prepare ~fuel:200_000 w in
  let predictor = Harness.profile_predictor p in
  let cfgs =
    List.map
      (fun m ->
        (* segments on, so the comparison also covers segment capture *)
        Ilp.Analyze.config ~collect_segments:true m predictor)
      machines
  in
  let together = Ilp.Analyze.run_many cfgs p.info p.trace in
  let separate = List.map (fun c -> Ilp.Analyze.run c p.info p.trace) cfgs in
  List.iter2
    (fun got want ->
      Alcotest.check result_t
        ("run_many = run: " ^ want.Ilp.Analyze.machine) want got)
    together separate

(* The Figure 2/3 worked example (a loop with a data-dependent if, then
   control-independent code), materialized vs fully streaming. *)
let figure2_source =
  {|
int a[6] = {1, 0, 1, 1, 0, 1};
int out;
int side;

int main(void) {
  int i;
  int x = 0;
  for (i = 0; i < 6; i = i + 1) {
    if (a[i]) x = x + 1;
    else side = side + 1;
  }
  out = 7;
  return x;
}
|}

let figure2_workload =
  { Workloads.Registry.name = "figure2"; description = "worked example";
    lang = "C"; numeric = false; source = figure2_source; fuel = 100_000;
    expected_result = None }

let streaming_matches w specs () =
  let materialized =
    Harness.Run.on_prepared (Harness.prepare w) specs
  in
  let streamed = run_stream w specs in
  List.iter2
    (fun want got ->
      Alcotest.check result_t
        ("streaming = materialized: " ^ want.Ilp.Analyze.machine) want got)
    materialized streamed

let test_streaming_figure2 () =
  let specs =
    List.map Harness.spec machines
    @ [ Harness.spec ~segments:true Ilp.Machine.sp ]
  in
  streaming_matches figure2_workload specs ()

let test_streaming_workload () =
  let w = { (Workloads.Registry.find "eqntott") with fuel = 150_000 } in
  streaming_matches w (List.map Harness.spec machines) ()

(* The acceptance criterion: a prepared workload costs one VM execution,
   and fanning out all seven machines costs one trace pass. *)
let test_counters () =
  Harness.Counters.reset ();
  let w = Workloads.Registry.find "gcc" in
  let p = Harness.prepare ~fuel:150_000 w in
  Alcotest.(check int) "one execution" 1 (Harness.Counters.executions ());
  let _ = Harness.Run.on_prepared p (List.map Harness.spec machines) in
  Alcotest.(check int) "still one execution" 1
    (Harness.Counters.executions ());
  Alcotest.(check int) "one pass for seven machines" 1
    (Harness.Counters.passes ());
  Alcotest.(check int) "every entry scanned once" (Vm.Trace.length p.trace)
    (Harness.Counters.entries ());
  Alcotest.(check int) "seven states advanced per entry"
    (7 * Vm.Trace.length p.trace)
    (Harness.Counters.state_entries ());
  Alcotest.(check int) "execution profiled every entry"
    (Vm.Trace.length p.trace)
    (Harness.Counters.profiled_entries ());
  Alcotest.(check int) "analyzed = profiled + state entries"
    (8 * Vm.Trace.length p.trace)
    (Harness.Counters.analyzed ());
  (* Table 2 statistics come from the execution-time profile: no extra
     execution, no extra pass. *)
  let _ = Harness.branch_stats p in
  let _ = Harness.profile_predictor p in
  Alcotest.(check int) "stats cost no pass" 1 (Harness.Counters.passes ());
  Harness.Counters.reset ()

(* Paper-shape invariant: relaxing control constraints never lowers
   parallelism.  BASE <= CD <= CD-MF <= ORACLE (control dependence
   track) and SP <= SP-CD <= SP-CD-MF <= ORACLE (speculation track). *)
let test_machine_ordering wname () =
  let w = Workloads.Registry.find wname in
  let p = Harness.prepare ~fuel:200_000 w in
  let results =
    Harness.Run.on_prepared p (List.map Harness.spec machines)
  in
  let par name =
    (List.find (fun (r : Ilp.Analyze.result) -> r.machine = name) results)
      .parallelism
  in
  let leq a b =
    Alcotest.(check bool)
      (Printf.sprintf "%s <= %s (%.3f vs %.3f)" a b (par a) (par b))
      true
      (par a <= par b)
  in
  leq "BASE" "CD";
  leq "CD" "CD-MF";
  leq "CD-MF" "ORACLE";
  leq "SP" "SP-CD";
  leq "SP-CD" "SP-CD-MF";
  leq "SP-CD-MF" "ORACLE";
  leq "BASE" "SP"

let suite =
  [ Alcotest.test_case "run_many golden: gcc" `Quick
      (test_run_many_golden "gcc");
    Alcotest.test_case "run_many golden: matrix300" `Quick
      (test_run_many_golden "matrix300");
    Alcotest.test_case "streaming figure2" `Quick test_streaming_figure2;
    Alcotest.test_case "streaming workload" `Quick test_streaming_workload;
    Alcotest.test_case "execution/pass counters" `Quick test_counters;
    Alcotest.test_case "machine ordering: gcc" `Quick
      (test_machine_ordering "gcc");
    Alcotest.test_case "machine ordering: matrix300" `Quick
      (test_machine_ordering "matrix300") ]

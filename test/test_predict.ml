(* Branch predictor tests. *)

let mk_trace entries =
  let t = Vm.Trace.create () in
  List.iter (fun (pc, aux) -> Vm.Trace.push t ~pc ~aux) entries;
  t

(* A trace with one static branch at pc 0: taken 3 times, not taken
   once, plus unrelated instructions. *)
let branch_trace () =
  mk_trace [ (0, 1); (1, -1); (0, 1); (0, 0); (0, 1) ]

let is_cond pc = pc = 0

let test_profile_majority () =
  let p =
    Predict.Predictor.profile ~n_static:2 ~is_cond (branch_trace ())
  in
  Alcotest.(check bool) "predicts taken" true (p.predict ~pc:0 ~taken:false);
  let stats = Predict.Predictor.measure p ~is_cond (branch_trace ()) in
  Alcotest.(check int) "branches" 4 stats.branches;
  Alcotest.(check int) "correct" 3 stats.correct;
  Alcotest.(check (float 1e-6)) "rate" 75. stats.rate

let test_profile_tie_breaks_not_taken () =
  let t = mk_trace [ (0, 1); (0, 0) ] in
  let p = Predict.Predictor.profile ~n_static:1 ~is_cond t in
  Alcotest.(check bool) "tie -> not taken" false
    (p.predict ~pc:0 ~taken:true)

let test_profile_unseen_branch () =
  let p =
    Predict.Predictor.profile ~n_static:4 ~is_cond:(fun _ -> true)
      (mk_trace [])
  in
  Alcotest.(check bool) "unseen -> not taken" false
    (p.predict ~pc:3 ~taken:true)

let test_perfect () =
  let p = Predict.Predictor.perfect in
  Alcotest.(check bool) "matches outcome" true (p.predict ~pc:9 ~taken:true);
  Alcotest.(check bool) "matches outcome 2" false
    (p.predict ~pc:9 ~taken:false)

let test_always_taken () =
  let stats =
    Predict.Predictor.measure Predict.Predictor.always_taken ~is_cond
      (branch_trace ())
  in
  Alcotest.(check int) "correct" 3 stats.correct

let test_btfn () =
  let p =
    Predict.Predictor.backward_taken ~is_backward:(fun pc -> pc = 0)
  in
  Alcotest.(check bool) "backward taken" true (p.predict ~pc:0 ~taken:false);
  Alcotest.(check bool) "forward not taken" false
    (p.predict ~pc:1 ~taken:true)

let test_two_bit_hysteresis () =
  let p = Predict.Predictor.two_bit ~n_static:1 in
  (* Starts weakly not-taken. *)
  Alcotest.(check bool) "initial" false (p.predict ~pc:0 ~taken:true);
  (* Now weakly taken after one taken outcome. *)
  Alcotest.(check bool) "trained" true (p.predict ~pc:0 ~taken:true);
  (* Saturated taken; a single not-taken must not flip it. *)
  Alcotest.(check bool) "strong" true (p.predict ~pc:0 ~taken:false);
  Alcotest.(check bool) "hysteresis" true (p.predict ~pc:0 ~taken:false);
  (* Two consecutive not-taken outcomes flip the prediction. *)
  Alcotest.(check bool) "flipped" false (p.predict ~pc:0 ~taken:false)

let test_profile_beats_static_on_workload () =
  let w = Workloads.Registry.find "espresso" in
  let p = Harness.prepare ~fuel:80_000 w in
  let is_cond = Ilp.Program_info.is_cond_branch p.info in
  let profile_rate =
    (Predict.Predictor.measure (Harness.profile_predictor p) ~is_cond
       p.trace)
      .rate
  in
  let taken_rate =
    (Predict.Predictor.measure Predict.Predictor.always_taken ~is_cond
       p.trace)
      .rate
  in
  Alcotest.(check bool) "profile >= always-taken" true
    (profile_rate >= taken_rate);
  Alcotest.(check bool) "profile is accurate" true (profile_rate > 70.)

(* --- last-value predictability trainer --- *)

let test_value_trainer_majority () =
  (* One static instruction defining r1.  Repeating the same value is
     predictable; alternating values are not; a single instance (no
     prediction ever made) is not. *)
  let observe_values b ~pc values =
    let regs = Array.make 32 0 and fregs = Array.make 32 0. in
    List.iter
      (fun v ->
        regs.(1) <- v;
        Predict.Predictor.Value.observe b ~pc ~step:0 ~regs ~fregs
          ~mem:[||])
      values
  in
  let mk () =
    Predict.Predictor.Value.builder ~n_static:3
      ~defs:[| [| 1 |]; [| 1 |]; [||] |]
  in
  let b = mk () in
  observe_values b ~pc:0 [ 42; 42; 42 ];
  observe_values b ~pc:1 [ 1; 2; 3; 4 ];
  let t = Predict.Predictor.Value.table b in
  Alcotest.(check bool) "constant def predictable" true t.(0);
  Alcotest.(check bool) "changing def not" false t.(1);
  Alcotest.(check bool) "no-def pc not" false t.(2);
  Alcotest.(check int) "dyn defs" 7 (Predict.Predictor.Value.dyn_defs b);
  Alcotest.(check int) "repeats" 2 (Predict.Predictor.Value.repeats b);
  Alcotest.(check int) "predictable statics" 1
    (Predict.Predictor.Value.predictable_static b);
  let single = mk () in
  observe_values single ~pc:0 [ 9 ];
  Alcotest.(check bool) "single instance not predictable" false
    (Predict.Predictor.Value.table single).(0)

let test_value_trainer_float_defs () =
  (* Float destinations live at uid 32+f and compare by bit pattern. *)
  let b = Predict.Predictor.Value.builder ~n_static:1 ~defs:[| [| 33 |] |] in
  let regs = Array.make 32 0 and fregs = Array.make 32 0. in
  List.iter
    (fun v ->
      fregs.(1) <- v;
      Predict.Predictor.Value.observe b ~pc:0 ~step:0 ~regs ~fregs ~mem:[||])
    [ 1.5; 1.5; 1.5 ];
  Alcotest.(check bool) "constant float predictable" true
    (Predict.Predictor.Value.table b).(0)

let test_value_trainer_via_vm () =
  (* The harness trains the profile through the VM observe hook during
     the one profiling execution; a loop full of constant stores must
     surface at least one predictable static instruction. *)
  let p =
    Harness.prepare_source ~train_values:true ~name:"vp-train"
      {|int main(void) { int i; int s = 0;
         for (i = 0; i < 80; i = i + 1) s = s + 0 * i + 1 - 1;
         return s; }|}
  in
  match p.Harness.values with
  | None -> Alcotest.fail "train_values did not build a value profile"
  | Some b ->
    Alcotest.(check int) "table sized to the program" p.info.n
      (Array.length (Predict.Predictor.Value.table b));
    Alcotest.(check bool) "observed dynamic defs" true
      (Predict.Predictor.Value.dyn_defs b > 0);
    Alcotest.(check bool) "found predictable instructions" true
      (Predict.Predictor.Value.predictable_static b > 0)

let test_value_trainer_off_by_default () =
  let p = Harness.prepare_source ~name:"vp-off" "int main(void){return 3;}" in
  Alcotest.(check bool) "no builder without train_values" true
    (p.Harness.values = None)

let suite =
  [ Alcotest.test_case "profile majority" `Quick test_profile_majority;
    Alcotest.test_case "profile tie" `Quick test_profile_tie_breaks_not_taken;
    Alcotest.test_case "profile unseen" `Quick test_profile_unseen_branch;
    Alcotest.test_case "perfect" `Quick test_perfect;
    Alcotest.test_case "always taken" `Quick test_always_taken;
    Alcotest.test_case "btfn" `Quick test_btfn;
    Alcotest.test_case "two-bit hysteresis" `Quick test_two_bit_hysteresis;
    Alcotest.test_case "profile on workload" `Quick
      test_profile_beats_static_on_workload;
    Alcotest.test_case "value trainer majority" `Quick
      test_value_trainer_majority;
    Alcotest.test_case "value trainer floats" `Quick
      test_value_trainer_float_defs;
    Alcotest.test_case "value trainer via vm" `Quick
      test_value_trainer_via_vm;
    Alcotest.test_case "value trainer off by default" `Quick
      test_value_trainer_off_by_default ]

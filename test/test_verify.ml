(* Static verifier tests: generated and registry programs must verify
   clean; hand-built negative programs must each trip exactly the
   diagnostic class they were built to trip.  The dynamic checker is
   exercised both ways too: a clean loop replays with zero violations,
   and a path-sensitive uninitialized read that statics can only warn
   about is caught at run time. *)

module I = Risc.Insn
module P = Asm.Program
module R = Risc.Reg
module V = Cfg.Verify

let report_of (prog : P.t) = V.check (Cfg.Analysis.analyze (P.resolve prog))

let error_kinds r = List.map (fun (d : V.diag) -> d.kind) (V.errors r)

let check_only_error kind prog =
  let r = report_of prog in
  Alcotest.(check (list string))
    ("errors are " ^ V.kind_name kind)
    [ V.kind_name kind ]
    (List.map V.kind_name (error_kinds r))

let main_halt body = { P.name = "main"; body = body @ [ P.Ins I.Halt ] }

let prog ?(procs = []) main_body =
  { P.procs = main_halt main_body :: procs; data = []; entry = "main" }

(* --- negatives: one program per error class ------------------------- *)

let test_bad_branch_target () =
  (* Label scope is global, so a branch can name a label in another
     procedure; the verifier must reject the resolved target. *)
  check_only_error V.Bad_branch_target
    (prog
       ~procs:
         [ { P.name = "other";
             body =
               [ P.Label "elsewhere"; P.Ins (I.Li (9, 1)); P.Ins (I.Jr R.ra) ]
           } ]
       [ P.Ins (I.Li (8, 1)); P.Ins (I.Bi (I.Eq, 8, 0, "elsewhere")) ])

let test_bad_jtab_target () =
  check_only_error V.Bad_jtab_target
    (prog
       ~procs:
         [ { P.name = "other";
             body =
               [ P.Label "case_x"; P.Ins (I.Li (9, 1)); P.Ins (I.Jr R.ra) ]
           } ]
       [ P.Ins (I.Li (8, 0));
         P.Ins (I.Jtab (8, [| "case_home"; "case_x" |]));
         P.Label "case_home";
         P.Ins (I.Li (10, 1)) ])

let test_bad_call_target () =
  check_only_error V.Bad_call_target
    (prog
       ~procs:
         [ { P.name = "f";
             body =
               [ P.Ins (I.Li (8, 1)); P.Label "mid"; P.Ins (I.Jr R.ra) ]
           } ]
       [ P.Ins (I.Jal "mid") ])

let test_fallthrough_off_end () =
  check_only_error V.Fallthrough_off_end
    (prog ~procs:[ { P.name = "f"; body = [ P.Ins (I.Li (9, 1)) ] } ] [])

let test_ret_discipline () =
  check_only_error V.Ret_discipline
    (prog
       ~procs:
         [ { P.name = "f";
             body = [ P.Ins (I.Li (8, 100)); P.Ins (I.Jr 8) ] } ]
       [])

let test_sp_discipline () =
  check_only_error V.Sp_discipline (prog [ P.Ins (I.Li (R.sp, 100)) ])

let test_sp_imbalance () =
  (* Frame opened, never closed before the return. *)
  check_only_error V.Sp_imbalance
    (prog
       ~procs:
         [ { P.name = "f";
             body =
               [ P.Ins (I.Alui (I.Add, R.sp, R.sp, -8)); P.Ins (I.Jr R.ra) ]
           } ]
       [])

let test_uninit_read () =
  (* A temporary is not live across calls, so a fresh procedure reading
     one sees an uninitialized register on every path. *)
  check_only_error V.Uninit_read
    (prog
       ~procs:
         [ { P.name = "f";
             body = [ P.Ins (I.Alui (I.Add, 2, 8, 0)); P.Ins (I.Jr R.ra) ] } ]
       [])

let has_warning kind r =
  List.exists (fun (d : V.diag) -> d.kind = kind) (V.warnings r)

let test_unreachable_block () =
  let r =
    report_of
      (prog [ P.Ins (I.J "skip"); P.Ins (I.Li (8, 1)); P.Label "skip" ])
  in
  Alcotest.(check int) "no errors" 0 r.n_errors;
  Alcotest.(check bool) "unreachable block flagged" true
    (has_warning V.Unreachable_block r)

let test_dead_store () =
  let r =
    report_of
      (prog
         [ P.Ins (I.Li (8, 5));
           P.Ins (I.Li (8, 6));
           P.Ins (I.Alui (I.Add, R.rv, 8, 0)) ])
  in
  Alcotest.(check int) "no errors" 0 r.n_errors;
  Alcotest.(check bool) "overwritten store flagged" true
    (List.exists
       (fun (d : V.diag) -> d.kind = V.Dead_store && d.pc = 0)
       (V.warnings r))

(* --- positives ------------------------------------------------------ *)

let test_random_programs_verify_clean =
  QCheck.Test.make ~name:"generated programs verify clean" ~count:40
    (QCheck.make ~print:(fun s -> s) Gen_minic.gen_program)
    (fun src ->
      let flat = Codegen.Compile.compile_flat src in
      let r = V.check (Cfg.Analysis.analyze flat) in
      if r.n_errors <> 0 then
        QCheck.Test.fail_reportf "verifier errors on generated program:@ %a"
          (Format.pp_print_list V.pp_diag)
          (V.errors r);
      true)

let test_workloads_verify_clean () =
  List.iter
    (fun (w : Workloads.Registry.t) ->
      let res = Harness.check w in
      Alcotest.(check int)
        (w.name ^ " verifies without errors")
        0 res.c_report.n_errors)
    Workloads.Registry.all

(* --- dynamic cross-validation --------------------------------------- *)

let run_dynamic flat =
  let a = Cfg.Analysis.analyze flat in
  let d = V.Dynamic.create a in
  let outcome =
    Vm.Exec.run ~fuel:100_000 ~record:false ~sink:(V.Dynamic.sink d)
      ~observe:(V.Dynamic.observe d) flat
  in
  (match outcome.status with
  | Vm.Exec.Fault f ->
    Alcotest.fail
      (Format.asprintf "VM fault: %a" Pipeline_error.pp_fault f)
  | Halted _ | Out_of_fuel -> ());
  d

let test_dynamic_clean_loop () =
  let src =
    {|int main(void) { int i; int s = 0;
       for (i = 0; i < 10; i = i + 1) s = s + i;
       return s; }|}
  in
  let d = run_dynamic (Codegen.Compile.compile_flat src) in
  Alcotest.(check bool) "entries checked" true (V.Dynamic.entries d > 0);
  Alcotest.(check int) "no violations" 0 (V.Dynamic.n_violations d)

let test_dynamic_catches_uninit_path () =
  (* Statically r9 is initialized on one path, so the verifier only
     warns; dynamically the taken path skips the write and the read is
     a hard violation. *)
  let flat =
    P.resolve
      (prog
         [ P.Ins (I.Bi (I.Eq, R.zero, 0, "skip"));
           P.Ins (I.Li (9, 1));
           P.Label "skip";
           P.Ins (I.Alui (I.Add, 10, 9, 0)) ])
  in
  let r = V.check (Cfg.Analysis.analyze flat) in
  Alcotest.(check int) "static: no errors" 0 r.n_errors;
  Alcotest.(check bool) "static: warns" true
    (has_warning V.Maybe_uninit_read r);
  let d = run_dynamic flat in
  Alcotest.(check bool) "dynamic: violation caught" true
    (V.Dynamic.n_violations d > 0)

let suite =
  [ Alcotest.test_case "bad branch target" `Quick test_bad_branch_target;
    Alcotest.test_case "bad jtab target" `Quick test_bad_jtab_target;
    Alcotest.test_case "bad call target" `Quick test_bad_call_target;
    Alcotest.test_case "fallthrough off end" `Quick test_fallthrough_off_end;
    Alcotest.test_case "ret discipline" `Quick test_ret_discipline;
    Alcotest.test_case "sp discipline" `Quick test_sp_discipline;
    Alcotest.test_case "sp imbalance" `Quick test_sp_imbalance;
    Alcotest.test_case "uninit read" `Quick test_uninit_read;
    Alcotest.test_case "unreachable block" `Quick test_unreachable_block;
    Alcotest.test_case "dead store" `Quick test_dead_store;
    QCheck_alcotest.to_alcotest test_random_programs_verify_clean;
    Alcotest.test_case "workloads verify clean" `Quick
      test_workloads_verify_clean;
    Alcotest.test_case "dynamic clean loop" `Quick test_dynamic_clean_loop;
    Alcotest.test_case "dynamic uninit path" `Quick
      test_dynamic_catches_uninit_path ]

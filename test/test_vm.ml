(* VM semantics: per-instruction behaviour, trace contents, faults. *)

module I = Risc.Insn
module P = Asm.Program
module R = Risc.Reg

let run_items ?fuel ?(data = []) items =
  let prog =
    { P.procs = [ { P.name = "main"; body = items } ]; data; entry = "main" }
  in
  Vm.Exec.run ?fuel ~mem_words:4096 (P.resolve prog)

let run_insns ?fuel ?data insns =
  run_items ?fuel ?data (List.map (fun i -> P.Ins i) insns)

let rv_of outcome =
  match outcome.Vm.Exec.status with
  | Vm.Exec.Halted v -> v
  | Out_of_fuel -> Alcotest.fail "out of fuel"
  | Fault f ->
    Alcotest.fail
      (Format.asprintf "fault: %a" Pipeline_error.pp_fault f)

let check_rv name expected insns =
  Alcotest.(check int) name expected (rv_of (run_insns insns))

let test_arith () =
  check_rv "li+add" 12
    [ I.Li (2, 5); I.Alui (I.Add, 2, 2, 7); I.Halt ];
  check_rv "mul/div chain" 6
    [ I.Li (8, 20); I.Li (9, 3); I.Alu (I.Div, 2, 8, 9); I.Halt ];
  check_rv "slt" 1 [ I.Li (8, -5); I.Alui (I.Slt, 2, 8, 0); I.Halt ]

let test_memory () =
  check_rv "store/load roundtrip" 99
    [ I.Li (8, 99); I.Sw (8, R.zero, 100); I.Lw (2, R.zero, 100); I.Halt ];
  check_rv "indexed addressing" 7
    [ I.Li (8, 50); I.Li (9, 7); I.Sw (9, 8, 3); I.Lw (2, 8, 3); I.Halt ]

let test_float () =
  let outcome =
    run_insns
      [ I.Fli (1, 2.5); I.Fli (2, 4.0); I.Falu (I.Fmul, 3, 1, 2);
        I.F2i (2, 3); I.Halt ]
  in
  Alcotest.(check int) "fp multiply" 10 (rv_of outcome)

let test_float_mem () =
  let outcome =
    run_insns
      [ I.Fli (1, 1.5); I.Fsw (1, R.zero, 64); I.Flw (2, R.zero, 64);
        I.Fli (3, 2.0); I.Falu (I.Fadd, 4, 2, 3); I.F2i (2, 4); I.Halt ]
  in
  Alcotest.(check int) "float memory" 3 (rv_of outcome)

let test_branches () =
  let taken =
    run_items
      [ P.Ins (I.Li (8, 5)); P.Ins (I.Bi (I.Gt, 8, 0, "yes"));
        P.Ins (I.Li (2, 0)); P.Label "yes"; P.Ins (I.Li (2, 1));
        P.Ins I.Halt ]
  in
  Alcotest.(check int) "taken branch skips" 1 (rv_of taken);
  let fallthrough =
    run_items
      [ P.Ins (I.Li (8, -5)); P.Ins (I.Bi (I.Gt, 8, 0, "skip"));
        P.Ins (I.Li (2, 42)); P.Label "skip"; P.Ins I.Halt ]
  in
  Alcotest.(check int) "fallthrough" 42 (rv_of fallthrough)

let test_call_ret () =
  let prog =
    { P.procs =
        [ { P.name = "main";
            body =
              [ P.Ins (I.Jal "double_it"); P.Ins I.Halt ] };
          { P.name = "double_it";
            body =
              [ P.Ins (I.Li (8, 21)); P.Ins (I.Alu (I.Add, 2, 8, 8));
                P.Ins (I.Jr R.ra) ] } ];
      data = [];
      entry = "main" }
  in
  let outcome = Vm.Exec.run ~mem_words:4096 (P.resolve prog) in
  Alcotest.(check int) "call/return" 42 (rv_of outcome)

let test_jump_table () =
  let outcome =
    run_items
      [ P.Ins (I.Li (8, 1));
        P.Ins (I.Jtab (8, [| "case0"; "case1" |]));
        P.Label "case0"; P.Ins (I.Li (2, 111)); P.Ins I.Halt;
        P.Label "case1"; P.Ins (I.Li (2, 222)); P.Ins I.Halt ]
  in
  Alcotest.(check int) "jtab selects" 222 (rv_of outcome)

let test_trace_contents () =
  let outcome =
    run_items
      [ P.Ins (I.Li (8, 9)); P.Ins (I.Sw (8, R.zero, 70));
        P.Ins (I.Lw (9, R.zero, 70)); P.Ins (I.Bi (I.Eq, 9, 9, "over"));
        P.Ins (I.Li (2, 0)); P.Label "over"; P.Ins I.Halt ]
  in
  let t = outcome.trace in
  Alcotest.(check int) "trace length" 5 (Vm.Trace.length t);
  Alcotest.(check int) "store addr" 70 (Vm.Trace.addr t 1);
  Alcotest.(check int) "load addr" 70 (Vm.Trace.addr t 2);
  Alcotest.(check bool) "branch taken" true (Vm.Trace.taken t 3);
  Alcotest.(check int) "plain aux" (-1) (Vm.Trace.aux t 0);
  (* pc 4 (the skipped li) must not appear in the trace *)
  let pcs = List.init (Vm.Trace.length t) (Vm.Trace.pc t) in
  Alcotest.(check (list int)) "trace pcs" [ 0; 1; 2; 3; 5 ] pcs

let test_movn () =
  check_rv "movn taken" 9
    [ I.Li (2, 1); I.Li (8, 9); I.Li (9, 1); I.Movn (2, 8, 9); I.Halt ];
  check_rv "movn not taken" 1
    [ I.Li (2, 1); I.Li (8, 9); I.Li (9, 0); I.Movn (2, 8, 9); I.Halt ]

let test_r0_immutable () =
  check_rv "write to r0 discarded" 0
    [ I.Li (0, 55); I.Alui (I.Add, 2, 0, 0); I.Halt ]

let test_fault_div0 () =
  match (run_insns [ I.Li (8, 1); I.Alui (I.Div, 2, 8, 0); I.Halt ]).status with
  | Vm.Exec.Fault _ -> ()
  | _ -> Alcotest.fail "expected fault"

let test_fault_bad_address () =
  match (run_insns [ I.Li (8, -1); I.Lw (2, 8, 0); I.Halt ]).status with
  | Vm.Exec.Fault _ -> ()
  | _ -> Alcotest.fail "expected fault"

let test_fault_jtab_range () =
  match
    (run_items
       [ P.Ins (I.Li (8, 5)); P.Ins (I.Jtab (8, [| "lbl" |]));
         P.Label "lbl"; P.Ins I.Halt ])
      .status
  with
  | Vm.Exec.Fault _ -> ()
  | _ -> Alcotest.fail "expected fault"

let test_out_of_fuel () =
  let outcome =
    run_items ~fuel:10 [ P.Label "spin"; P.Ins (I.J "spin") ]
  in
  (match outcome.status with
  | Vm.Exec.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected out of fuel");
  Alcotest.(check int) "fuel bounds steps" 10 outcome.steps

let test_data_segment () =
  let outcome =
    run_insns
      ~data:[ (32, [| P.Int_cell 5; P.Int_cell 6 |]) ]
      [ I.Lw (8, R.zero, 32); I.Lw (9, R.zero, 33); I.Alu (I.Add, 2, 8, 9);
        I.Halt ]
  in
  Alcotest.(check int) "initialized data" 11 (rv_of outcome)

let test_float_data_segment () =
  let outcome =
    run_insns
      ~data:[ (40, [| P.Float_cell 2.25 |]) ]
      [ I.Flw (1, R.zero, 40); I.Fli (2, 4.0); I.Falu (I.Fmul, 3, 1, 2);
        I.F2i (2, 3); I.Halt ]
  in
  Alcotest.(check int) "initialized float data" 9 (rv_of outcome)

let test_determinism () =
  let w = Workloads.Registry.find "eqntott" in
  let flat = Workloads.Registry.compile w in
  let o1 = Vm.Exec.run ~fuel:50_000 flat in
  let o2 = Vm.Exec.run ~fuel:50_000 flat in
  Alcotest.(check int) "same steps" o1.steps o2.steps;
  let same = ref true in
  for i = 0 to Vm.Trace.length o1.trace - 1 do
    if
      Vm.Trace.pc o1.trace i <> Vm.Trace.pc o2.trace i
      || Vm.Trace.aux o1.trace i <> Vm.Trace.aux o2.trace i
    then same := false
  done;
  Alcotest.(check bool) "identical traces" true !same

let test_no_record () =
  let outcome =
    run_insns ~fuel:100
      [ I.Li (2, 1); I.Halt ]
  in
  ignore outcome;
  let w = Workloads.Registry.find "awk" in
  let flat = Workloads.Registry.compile w in
  let o = Vm.Exec.run ~fuel:10_000 ~record:false flat in
  Alcotest.(check int) "no trace recorded" 0 (Vm.Trace.length o.trace)

let suite =
  [ Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "memory" `Quick test_memory;
    Alcotest.test_case "floating point" `Quick test_float;
    Alcotest.test_case "float memory" `Quick test_float_mem;
    Alcotest.test_case "branches" `Quick test_branches;
    Alcotest.test_case "call/return" `Quick test_call_ret;
    Alcotest.test_case "jump table" `Quick test_jump_table;
    Alcotest.test_case "trace contents" `Quick test_trace_contents;
    Alcotest.test_case "movn" `Quick test_movn;
    Alcotest.test_case "r0 immutable" `Quick test_r0_immutable;
    Alcotest.test_case "fault: div by zero" `Quick test_fault_div0;
    Alcotest.test_case "fault: bad address" `Quick test_fault_bad_address;
    Alcotest.test_case "fault: jtab range" `Quick test_fault_jtab_range;
    Alcotest.test_case "out of fuel" `Quick test_out_of_fuel;
    Alcotest.test_case "data segment" `Quick test_data_segment;
    Alcotest.test_case "float data segment" `Quick test_float_data_segment;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "record off" `Quick test_no_record ]

(* Intra-trace parallel analysis (DESIGN.md §15): the segmented
   decode/stitch path must be bit-identical to the sequential analyzer
   for every machine spec, every segment stride, every pool width and
   every trace shape — including truncated executions, step-budget
   cuts, invalid pcs and collected segments.  Plus the building blocks:
   trace segmentation coverage, pool futures, config compatibility and
   the deterministic telemetry the segmented path emits. *)

let pp_result fmt (r : Ilp.Analyze.result) =
  Format.fprintf fmt
    "{machine=%s; counted=%d; seq=%d; cycles=%d; par=%.6f; dyn=%d; mis=%d; \
     segs=%d; compl=%s}"
    r.machine r.counted r.seq_cycles r.cycles r.parallelism r.dyn_branches
    r.mispredicts
    (Array.length r.segments)
    (Pipeline_error.completeness_tag r.completeness)

let result_t = Alcotest.testable pp_result ( = )

(* ------------------------------------------------------------------ *)
(* Pool futures: async/await, exception boxing, helping. *)

let test_future_basic () =
  Stdx.Pool.with_pool ~jobs:2 (fun pool ->
      let futs =
        List.init 20 (fun i -> Stdx.Pool.async pool (fun () -> i * i))
      in
      let got = List.map (Stdx.Pool.await pool) futs in
      Alcotest.(check (list int))
        "futures resolve in submission order"
        (List.init 20 (fun i -> i * i))
        got)

let test_future_inline_jobs_one () =
  Stdx.Pool.with_pool ~jobs:1 (fun pool ->
      let fut = Stdx.Pool.async pool (fun () -> 42) in
      Alcotest.(check bool) "jobs=1 future completes at submit" true
        (Stdx.Pool.poll fut);
      Alcotest.(check int) "value" 42 (Stdx.Pool.await pool fut))

exception Boom of int

let test_future_exception () =
  Stdx.Pool.with_pool ~jobs:2 (fun pool ->
      let fut = Stdx.Pool.async pool (fun () -> raise (Boom 7)) in
      (match Stdx.Pool.await pool fut with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 7 -> ());
      (* boxed failure is stable: a second await re-raises too *)
      (match Stdx.Pool.await pool fut with
      | _ -> Alcotest.fail "expected Boom again"
      | exception Boom 7 -> ());
      (* and the pool is still usable *)
      let ok = Stdx.Pool.async pool (fun () -> 1) in
      Alcotest.(check int) "pool survives" 1 (Stdx.Pool.await pool ok))

let test_future_helping_narrow_pool () =
  (* A width-1 pool whose single submitted task awaits a later
     submission: only awaiter-helping can finish this without
     deadlock. *)
  Stdx.Pool.with_pool ~jobs:1 (fun pool ->
      let a = Stdx.Pool.async pool (fun () -> 10) in
      let b = Stdx.Pool.async pool (fun () -> Stdx.Pool.await pool a + 1) in
      Alcotest.(check int) "nested await" 11 (Stdx.Pool.await pool b))

(* ------------------------------------------------------------------ *)
(* Trace segmentation: exact coverage, in order, owned arrays. *)

let mk_trace n =
  let t = Vm.Trace.create () in
  for i = 0 to n - 1 do
    Vm.Trace.push t ~pc:(i * 3 mod 97) ~aux:(if i mod 5 = 0 then 1 else -1)
  done;
  t

let check_coverage ~steps n =
  let t = mk_trace n in
  let segs = Vm.Trace.segments ~steps t in
  let total = Array.fold_left (fun a s -> a + s.Vm.Trace.seg_len) 0 segs in
  Alcotest.(check int)
    (Printf.sprintf "coverage steps=%d n=%d" steps n)
    n total;
  Array.iteri
    (fun k (s : Vm.Trace.seg) ->
      Alcotest.(check int) "index" k s.seg_index;
      Alcotest.(check int) "base" (k * steps) s.seg_base;
      for i = 0 to s.seg_len - 1 do
        let j = s.seg_base + i in
        if s.seg_pcs.(i) <> Vm.Trace.pc t j
           || s.seg_auxs.(i) <> Vm.Trace.aux t j
        then Alcotest.failf "entry %d diverged from trace" j
      done)
    segs

let test_segments_cover () =
  check_coverage ~steps:1 13;
  check_coverage ~steps:5 13;
  check_coverage ~steps:13 13;
  check_coverage ~steps:1000 13;
  check_coverage ~steps:4 0

let test_segmenting_sink_matches_segments () =
  let n = 103 and steps = 10 in
  let t = mk_trace n in
  let emitted = ref [] in
  let sink =
    Vm.Trace.segmenting_sink ~steps ~emit:(fun s -> emitted := s :: !emitted)
  in
  Vm.Trace.feed t sink;
  let streamed = Array.of_list (List.rev !emitted) in
  let sliced = Vm.Trace.segments ~steps t in
  Alcotest.(check int) "same segment count" (Array.length sliced)
    (Array.length streamed);
  Array.iteri
    (fun k (a : Vm.Trace.seg) ->
      let b = streamed.(k) in
      Alcotest.(check int) "len" a.seg_len b.Vm.Trace.seg_len;
      for i = 0 to a.seg_len - 1 do
        if a.seg_pcs.(i) <> b.Vm.Trace.seg_pcs.(i)
           || a.seg_auxs.(i) <> b.Vm.Trace.seg_auxs.(i)
        then Alcotest.failf "segment %d entry %d diverged" k i
      done)
    sliced

(* ------------------------------------------------------------------ *)
(* Compatibility and stride selection. *)

let test_compatible () =
  let mk ?(inline = true) p =
    Ilp.Analyze.config ~inline Ilp.Machine.sp_cd_mf p
  in
  let perfect = Predict.Predictor.perfect in
  Alcotest.(check bool) "empty list" false (Ilp.Segmented.compatible []);
  Alcotest.(check bool) "same stateless" true
    (Ilp.Segmented.compatible [ mk perfect; mk perfect ]);
  Alcotest.(check bool) "stateful 2-bit" false
    (Ilp.Segmented.compatible [ mk (Predict.Predictor.two_bit ~n_static:8) ]);
  Alcotest.(check bool) "mixed inline" false
    (Ilp.Segmented.compatible [ mk perfect; mk ~inline:false perfect ]);
  Alcotest.(check bool) "mixed predictor names" false
    (Ilp.Segmented.compatible [ mk perfect; mk Predict.Predictor.always_taken ])

let test_auto_steps_bounds () =
  Alcotest.(check int) "floor" 16_384
    (Ilp.Segmented.auto_steps ~trace_len:1000 ~jobs:4);
  Alcotest.(check int) "ceiling" 262_144
    (Ilp.Segmented.auto_steps ~trace_len:100_000_000 ~jobs:2);
  Alcotest.(check int) "interior" 31_250
    (Ilp.Segmented.auto_steps ~trace_len:250_000 ~jobs:2);
  Alcotest.(check bool) "always >= 1" true
    (Ilp.Segmented.auto_steps ~trace_len:0 ~jobs:1 >= 1)

let prepared_flat =
  lazy
    (let p =
       Harness.prepare_source ~name:"flatsrc"
         "int main(void) { return 3; }"
     in
     p.Harness.flat)

let test_bad_args_raise () =
  let cfg = Ilp.Analyze.config Ilp.Machine.sp Predict.Predictor.perfect in
  let info = Ilp.Program_info.analyze_flat (Lazy.force prepared_flat) in
  (match Ilp.Segmented.run ~segment_steps:0 [ cfg ] info (mk_trace 3) with
  | _ -> Alcotest.fail "expected Invalid_argument for steps=0"
  | exception Invalid_argument _ -> ());
  match
    Ilp.Segmented.run ~segment_steps:4
      [ Ilp.Analyze.config Ilp.Machine.sp
          (Predict.Predictor.two_bit ~n_static:8) ]
      info (mk_trace 3)
  with
  | _ -> Alcotest.fail "expected Invalid_argument for stateful predictor"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Bit-identity: Segmented.run == Analyze.run_many on real compiled
   programs, across strides, pool widths and machine specs. *)

let sources =
  [ ( "branchy",
      {|int main(void) { int i; int s = 0;
         for (i = 0; i < 300; i = i + 1) {
           if (i % 3 == 0) s = s + i;
           else if (i % 7 == 0) s = s - 2;
         }
         return s; }|} );
    ( "memory",
      {|int a[64];
        int main(void) { int i; int s = 0;
         for (i = 0; i < 64; i = i + 1) a[i] = i * i;
         for (i = 1; i < 64; i = i + 1) a[i] = a[i] + a[i - 1];
         for (i = 0; i < 64; i = i + 8) s = s + a[i];
         return s; }|} );
    ( "calls",
      {|int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int main(void) { return fib(12); }|} ) ]

let prepared =
  List.map
    (fun (name, src) -> (name, lazy (Harness.prepare_source ~name src)))
    sources

let configs_for (p : Harness.prepared) ~collect ~step_budget =
  let predictor = Harness.profile_predictor p in
  List.map
    (fun m ->
      Ilp.Analyze.config ~collect_segments:collect ?step_budget m predictor)
    Ilp.Machine.all_paper

let check_identical ?pool ~segment_steps ~name (p : Harness.prepared)
    configs =
  let seq =
    Ilp.Analyze.run_many ~completeness:p.Harness.completeness configs
      p.Harness.info p.Harness.trace
  in
  let seg =
    Ilp.Segmented.run ?pool ~completeness:p.Harness.completeness
      ~segment_steps configs p.Harness.info p.Harness.trace
  in
  Alcotest.(check (list result_t))
    (Printf.sprintf "%s steps=%d" name segment_steps)
    seq seg.Ilp.Segmented.results;
  let expect_segments =
    (Vm.Trace.length p.Harness.trace + segment_steps - 1) / segment_steps
  in
  Alcotest.(check int)
    (name ^ " segment count")
    expect_segments seg.Ilp.Segmented.segments

let test_identical_strides () =
  List.iter
    (fun (name, lp) ->
      let p = Lazy.force lp in
      let configs = configs_for p ~collect:false ~step_budget:None in
      List.iter
        (fun segment_steps ->
          check_identical ~segment_steps ~name p configs)
        [ 1; 7; 64; Vm.Trace.length p.Harness.trace + 1 ])
    prepared

let test_identical_on_pool () =
  Stdx.Pool.with_pool ~jobs:3 (fun pool ->
      List.iter
        (fun (name, lp) ->
          let p = Lazy.force lp in
          let configs = configs_for p ~collect:true ~step_budget:None in
          check_identical ~pool ~segment_steps:50 ~name p configs)
        prepared)

let test_identical_step_budget () =
  (* The budget cut must land on the same entry segmented or not, and
     the Truncated tag must carry through the stitchers. *)
  let _, lp = List.hd prepared in
  let p = Lazy.force lp in
  List.iter
    (fun budget ->
      let configs =
        configs_for p ~collect:false ~step_budget:(Some budget)
      in
      check_identical ~segment_steps:33 ~name:"budget" p configs)
    [ 1; 17; 400 ]

let test_identical_truncated_execution () =
  (* A fuel-capped execution: completeness is Truncated before analysis
     even starts; both paths must tag results identically. *)
  let p =
    Harness.prepare_source ~name:"spin" ~fuel:5_000
      "int main(void) { int i; int s = 0; for (i = 0; i < 1000000; i = i + 1) s = s + i; return s; }"
  in
  let configs = configs_for p ~collect:false ~step_budget:None in
  check_identical ~segment_steps:999 ~name:"truncated" p configs

let test_invalid_pc_parity () =
  (* A hand-built trace wandering outside the code segment: the
     sequential analyzer raises at the offending entry; the segmented
     path must defer its decode marker to the same apply step and raise
     the same exception. *)
  let p = Lazy.force (snd (List.hd prepared)) in
  let configs = configs_for p ~collect:false ~step_budget:None in
  let t = Vm.Trace.create () in
  Vm.Trace.push t ~pc:0 ~aux:(-1);
  Vm.Trace.push t ~pc:999_999 ~aux:(-1);
  Vm.Trace.push t ~pc:0 ~aux:(-1);
  let seq =
    match Ilp.Analyze.run_many configs p.Harness.info t with
    | _ -> "no-raise"
    | exception Invalid_argument m -> m
  in
  let seg =
    match Ilp.Segmented.run ~segment_steps:2 configs p.Harness.info t with
    | _ -> "no-raise"
    | exception Invalid_argument m -> m
  in
  Alcotest.(check string) "same Invalid_argument" seq seg;
  Alcotest.(check bool) "did raise" true (seq <> "no-raise");
  (* ...but a step budget that cuts before the bad entry means neither
     path ever applies it: no raise, identical truncated results.
     Budget 0 trips the guard on the very first entry, so the cut is
     guaranteed to land ahead of the invalid pc. *)
  let capped = configs_for p ~collect:false ~step_budget:(Some 0) in
  check_identical ~segment_steps:2 ~name:"cut before invalid"
    { p with trace = t } capped

(* ------------------------------------------------------------------ *)
(* Harness-level: heterogeneous spec lists (profile + perfect + the
   stateful 2-bit, which must fall back to a sequential group) through
   Run.on_prepared with segmentation on. *)

let test_harness_mixed_predictors () =
  let p = Lazy.force (snd (List.nth prepared 2)) in
  let specs =
    [ Harness.spec Ilp.Machine.sp_cd_mf;
      Harness.spec ~predictor:`Two_bit Ilp.Machine.sp_cd_mf;
      Harness.spec ~predictor:`Perfect Ilp.Machine.sp_cd;
      Harness.spec ~predictor:`Two_bit Ilp.Machine.sp;
      Harness.spec ~inline:false Ilp.Machine.cd ]
  in
  let seq = Harness.Run.on_prepared p specs in
  Stdx.Pool.with_pool ~jobs:3 (fun pool ->
      let seg =
        Harness.Run.on_prepared ~pool ~segmenting:(`Steps 40) ~jobs:3 p
          specs
      in
      Alcotest.(check (list result_t)) "mixed specs identical" seq seg)

let test_harness_auto_resolution () =
  let p = Lazy.force (snd (List.hd prepared)) in
  let specs = [ Harness.spec Ilp.Machine.sp_cd_mf ] in
  let seq = Harness.Run.on_prepared p specs in
  (* `Auto with jobs=1 degrades to the sequential path; with jobs>1 it
     picks a stride — results identical either way. *)
  let auto1 = Harness.Run.on_prepared ~segmenting:`Auto ~jobs:1 p specs in
  Stdx.Pool.with_pool ~jobs:2 (fun pool ->
      let auto2 =
        Harness.Run.on_prepared ~pool ~segmenting:`Auto ~jobs:2 p specs
      in
      Alcotest.(check (list result_t)) "auto jobs=1" seq auto1;
      Alcotest.(check (list result_t)) "auto jobs=2" seq auto2)

(* ------------------------------------------------------------------ *)
(* Telemetry: segment spans merge deterministically (same skeleton with
   and without a pool) and the segment counter/histogram register. *)

let test_obs_deterministic () =
  let skeleton_of run =
    let obs = Obs.Ctx.create () in
    run obs;
    (Obs.Span.skeleton (Obs.Ctx.spans obs), Obs.Ctx.snapshot obs)
  in
  let p = Lazy.force (snd (List.hd prepared)) in
  let configs = configs_for p ~collect:false ~step_budget:None in
  let run ?pool obs =
    ignore
      (Ilp.Segmented.run ?pool ~obs ~span_index_base:100 ~workload:"w"
         ~completeness:p.Harness.completeness ~segment_steps:60 configs
         p.Harness.info p.Harness.trace)
  in
  let sk_seq, snap_seq = skeleton_of (fun obs -> run obs) in
  let sk_par, _ =
    skeleton_of (fun obs ->
        Stdx.Pool.with_pool ~jobs:3 (fun pool -> run ~pool obs))
  in
  Alcotest.(check bool) "span skeleton scheduling-independent" true
    (sk_seq = sk_par);
  let segments_total =
    List.find_map
      (fun (s : Obs.Metrics.snap) ->
        match (s.name, s.value) with
        | "analyze_segments_total", Obs.Metrics.Counter n -> Some n
        | _ -> None)
      snap_seq
  in
  let expect =
    (Vm.Trace.length p.Harness.trace + 59) / 60
  in
  Alcotest.(check (option int)) "analyze_segments_total" (Some expect)
    segments_total;
  Alcotest.(check bool) "stitch-wait histogram registered" true
    (List.exists
       (fun (s : Obs.Metrics.snap) ->
         s.name = "analyze_segment_stitch_wait_ns")
       snap_seq)

let test_check_hook_propagates () =
  let p = Lazy.force (snd (List.hd prepared)) in
  let configs = configs_for p ~collect:false ~step_budget:None in
  let calls = ref 0 in
  let check () =
    incr calls;
    if !calls > 2 then failwith "deadline!"
  in
  match
    Ilp.Segmented.run ~check ~segment_steps:30 configs p.Harness.info
      p.Harness.trace
  with
  | _ -> Alcotest.fail "expected the check hook's exception"
  | exception Failure m -> Alcotest.(check string) "hook exn" "deadline!" m

(* ------------------------------------------------------------------ *)
(* qcheck: random stride x pool width x machine-lattice point, on all
   three compiled programs — segmented == sequential, bit for bit. *)

let prop_segmented_equals_sequential =
  QCheck.Test.make ~count:60
    ~name:"segmented == sequential (random stride/jobs/machine)"
    QCheck.(
      triple (int_range 1 5_000) (int_range 1 4)
        (int_bound 0x3FFFFFFF))
    (fun (segment_steps, jobs, mseed) ->
      let machine = Ilp.Machine.random mseed in
      List.for_all
        (fun (_, lp) ->
          let p = Lazy.force lp in
          let predictor = Harness.profile_predictor p in
          let configs =
            [ Ilp.Analyze.config machine predictor;
              Ilp.Analyze.config Ilp.Machine.sp_cd_mf predictor ]
          in
          let seq =
            Ilp.Analyze.run_many ~completeness:p.Harness.completeness
              configs p.Harness.info p.Harness.trace
          in
          let seg =
            if jobs = 1 then
              Ilp.Segmented.run ~completeness:p.Harness.completeness
                ~segment_steps configs p.Harness.info p.Harness.trace
            else
              Stdx.Pool.with_pool ~jobs (fun pool ->
                  Ilp.Segmented.run ~pool
                    ~completeness:p.Harness.completeness ~segment_steps
                    configs p.Harness.info p.Harness.trace)
          in
          seq = seg.Ilp.Segmented.results)
        prepared)

(* All ten registry workloads, truncated by a small fuel, through the
   harness segmented path on a pool — the acceptance sweep. *)
let test_all_workloads_identical () =
  let fuel = 30_000 in
  let specs = List.map Harness.spec Ilp.Machine.all_paper in
  List.iter
    (fun (w : Workloads.Registry.t) ->
      let p = Harness.prepare ~fuel w in
      let seq = Harness.Run.on_prepared p specs in
      Stdx.Pool.with_pool ~jobs:4 (fun pool ->
          let seg =
            Harness.Run.on_prepared ~pool ~segmenting:(`Steps 4_096)
              ~jobs:4 p specs
          in
          Alcotest.(check (list result_t)) (w.name ^ ": segmented") seq seg))
    Workloads.Registry.all

let suite =
  [ Alcotest.test_case "pool futures resolve" `Quick test_future_basic;
    Alcotest.test_case "pool future inline at jobs=1" `Quick
      test_future_inline_jobs_one;
    Alcotest.test_case "pool future boxes exceptions" `Quick
      test_future_exception;
    Alcotest.test_case "await helps on a narrow pool" `Quick
      test_future_helping_narrow_pool;
    Alcotest.test_case "segments cover the trace exactly" `Quick
      test_segments_cover;
    Alcotest.test_case "segmenting sink == slicing" `Quick
      test_segmenting_sink_matches_segments;
    Alcotest.test_case "config compatibility" `Quick test_compatible;
    Alcotest.test_case "auto stride bounds" `Quick test_auto_steps_bounds;
    Alcotest.test_case "bad args raise" `Quick test_bad_args_raise;
    Alcotest.test_case "identical across strides" `Quick
      test_identical_strides;
    Alcotest.test_case "identical on a pool (collect_segments)" `Quick
      test_identical_on_pool;
    Alcotest.test_case "identical under step budgets" `Quick
      test_identical_step_budget;
    Alcotest.test_case "identical on truncated execution" `Quick
      test_identical_truncated_execution;
    Alcotest.test_case "invalid pc parity" `Quick test_invalid_pc_parity;
    Alcotest.test_case "harness: mixed predictors fall back" `Quick
      test_harness_mixed_predictors;
    Alcotest.test_case "harness: auto stride resolution" `Quick
      test_harness_auto_resolution;
    Alcotest.test_case "telemetry is scheduling-independent" `Quick
      test_obs_deterministic;
    Alcotest.test_case "check hook propagates" `Quick
      test_check_hook_propagates;
    QCheck_alcotest.to_alcotest prop_segmented_equals_sequential;
    Alcotest.test_case "all workloads: segmented == sequential" `Slow
      test_all_workloads_identical ]

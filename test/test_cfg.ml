(* Static analysis tests: basic blocks, dominators, reverse dominance
   frontiers (control dependence), loops and induction variables. *)

module I = Risc.Insn
module P = Asm.Program
module R = Risc.Reg

let flat_of items =
  P.resolve
    { P.procs = [ { P.name = "main"; body = items } ];
      data = [];
      entry = "main" }

(* if (r8) r9 = 1; else r9 = 2; r10 = 3; halt *)
let diamond () =
  flat_of
    [ P.Ins (I.Bi (I.Eq, 8, 0, "else"));  (* block 0 *)
      P.Ins (I.Li (9, 1));                (* block 1 *)
      P.Ins (I.J "join");
      P.Label "else";
      P.Ins (I.Li (9, 2));                (* block 2 *)
      P.Label "join";
      P.Ins (I.Li (10, 3));               (* block 3 *)
      P.Ins I.Halt ]

let test_blocks_diamond () =
  let g = Cfg.Graph.build (diamond ()) in
  Alcotest.(check int) "four blocks" 4 (Array.length g.blocks);
  let succs b = List.sort compare g.blocks.(b).succs in
  Alcotest.(check (list int)) "branch succs" [ 1; 2 ] (succs 0);
  Alcotest.(check (list int)) "then to join" [ 3 ] (succs 1);
  Alcotest.(check (list int)) "else to join" [ 3 ] (succs 2);
  Alcotest.(check (list int)) "join exits" [] (succs 3);
  Alcotest.(check (list int)) "join preds" [ 1; 2 ]
    (List.sort compare g.blocks.(3).preds);
  Alcotest.(check bool) "block 0 is branch block" true
    (Cfg.Graph.is_branch_block g 0);
  Alcotest.(check bool) "block 1 is not" false (Cfg.Graph.is_branch_block g 1)

let test_rdf_diamond () =
  let cfg = Cfg.Analysis.analyze (diamond ()) in
  (* Both arms are control dependent on the branch; the join is not. *)
  Alcotest.(check (list int)) "then arm CD" [ 0 ]
    (Array.to_list cfg.rdf.(1));
  Alcotest.(check (list int)) "else arm CD" [ 0 ]
    (Array.to_list cfg.rdf.(2));
  Alcotest.(check (list int)) "join independent" []
    (Array.to_list cfg.rdf.(3));
  Alcotest.(check (list int)) "branch itself independent" []
    (Array.to_list cfg.rdf.(0))

(* A counted loop with an if inside, and code after the loop:
     r16 = 0; loop: if (r16 >= 10) goto done;
     if (r8) r9 = 1; r16 += 1; goto loop; done: r10 = 1; halt *)
let loop_program () =
  flat_of
    [ P.Ins (I.Li (16, 0));                 (* b0 *)
      P.Label "loop";
      P.Ins (I.Bi (I.Ge, 16, 10, "done"));  (* b1: loop branch *)
      P.Ins (I.Bi (I.Eq, 8, 0, "skip"));    (* b2: inner if *)
      P.Ins (I.Li (9, 1));                  (* b3 *)
      P.Label "skip";
      P.Ins (I.Alui (I.Add, 16, 16, 1));    (* b4: induction update *)
      P.Ins (I.J "loop");
      P.Label "done";
      P.Ins (I.Li (10, 1));                 (* b5 *)
      P.Ins I.Halt ]

let test_loop_detection () =
  let cfg = Cfg.Analysis.analyze (loop_program ()) in
  Alcotest.(check int) "one loop" 1 (List.length cfg.loops.loops);
  let l = List.hd cfg.loops.loops in
  Alcotest.(check int) "header is loop branch block" 1 l.header;
  Alcotest.(check bool) "body contains inner if" true (List.mem 2 l.body);
  Alcotest.(check bool) "body contains latch" true (List.mem 4 l.body);
  Alcotest.(check bool) "body excludes exit" false (List.mem 5 l.body)

let test_induction_marking () =
  let flat = loop_program () in
  let cfg = Cfg.Analysis.analyze flat in
  let l = List.hd cfg.loops.loops in
  Alcotest.(check (list int)) "r16 is induction" [ 16 ] l.induction;
  (* The update (pc 4) and the loop branch (pc 1) are overhead; the
     inner data-dependent branch (pc 2) is not. *)
  Alcotest.(check bool) "update marked" true cfg.loops.overhead.(4);
  Alcotest.(check bool) "loop branch marked" true cfg.loops.overhead.(1);
  Alcotest.(check bool) "inner branch unmarked" false cfg.loops.overhead.(2);
  Alcotest.(check bool) "init unmarked" false cfg.loops.overhead.(0)

let test_rdf_loop () =
  let cfg = Cfg.Analysis.analyze (loop_program ()) in
  let sorted b = List.sort compare (Array.to_list cfg.rdf.(b)) in
  (* The loop body is control dependent on the loop branch (b1); the
     inner arm on both the inner if (b2) and the loop branch.  The code
     after the loop depends on nothing.  The loop branch block is
     control dependent on itself (it runs again each iteration). *)
  Alcotest.(check (list int)) "inner if depends on loop" [ 1 ] (sorted 2);
  Alcotest.(check (list int)) "arm depends on if" [ 2 ] (sorted 3);
  Alcotest.(check (list int)) "latch depends on loop branch" [ 1 ] (sorted 4);
  Alcotest.(check (list int)) "loop branch self-dependent" [ 1 ] (sorted 1);
  Alcotest.(check (list int)) "after-loop independent" [] (sorted 5)

let test_non_invariant_bound_not_marked () =
  (* Loop whose exit compares against a register reloaded in the loop:
     not loop invariant, so the branch must not be marked. *)
  let flat =
    flat_of
      [ P.Ins (I.Li (16, 0));
        P.Label "loop";
        P.Ins (I.Lw (8, R.zero, 100));      (* bound reloaded each time *)
        P.Ins (I.Alui (I.Add, 16, 16, 1));
        P.Ins (I.B (I.Lt, 16, 8, "loop"));
        P.Ins I.Halt ]
  in
  let cfg = Cfg.Analysis.analyze flat in
  Alcotest.(check bool) "update still marked" true cfg.loops.overhead.(2);
  Alcotest.(check bool) "branch not marked" false cfg.loops.overhead.(3)

let test_two_writes_not_induction () =
  let flat =
    flat_of
      [ P.Ins (I.Li (16, 0));
        P.Label "loop";
        P.Ins (I.Alui (I.Add, 16, 16, 1));
        P.Ins (I.Alui (I.Add, 16, 16, 2));  (* second write: not induction *)
        P.Ins (I.Bi (I.Lt, 16, 30, "loop"));
        P.Ins I.Halt ]
  in
  let cfg = Cfg.Analysis.analyze flat in
  let l = List.hd cfg.loops.loops in
  Alcotest.(check (list int)) "no induction" [] l.induction;
  Alcotest.(check bool) "no overhead marks" true
    (Array.for_all not cfg.loops.overhead)

let test_conditional_update_not_induction () =
  (* The increment sits under an if, so it does not execute once per
     iteration and must not be treated as an induction update. *)
  let flat =
    flat_of
      [ P.Ins (I.Li (16, 0));
        P.Label "loop";
        P.Ins (I.Bi (I.Eq, 8, 0, "skip"));
        P.Ins (I.Alui (I.Add, 16, 16, 1)); (* conditional increment *)
        P.Label "skip";
        P.Ins (I.Bi (I.Lt, 16, 30, "loop"));
        P.Ins I.Halt ]
  in
  let cfg = Cfg.Analysis.analyze flat in
  Alcotest.(check bool) "conditional update not marked" false
    cfg.loops.overhead.(2)

let test_nested_loops () =
  let src =
    {|int main(void) { int i; int j; int s = 0;
       for (i = 0; i < 5; i = i + 1)
         for (j = 0; j < 5; j = j + 1)
           s = s + 1;
       return s; }|}
  in
  let flat = Codegen.Compile.compile_flat src in
  let cfg = Cfg.Analysis.analyze flat in
  Alcotest.(check int) "two loops" 2 (List.length cfg.loops.loops);
  let inductions =
    List.concat_map (fun (l : Cfg.Loops.loop) -> l.induction) cfg.loops.loops
  in
  Alcotest.(check bool) "both counters found" true
    (List.length inductions >= 2)

let test_dominators () =
  let g = Cfg.Graph.build (loop_program ()) in
  let n = Array.length g.blocks in
  let succs b = g.blocks.(b).succs in
  let preds b = g.blocks.(b).preds in
  let dom = Cfg.Dom.compute ~n ~entry:0 ~succs ~preds in
  Alcotest.(check bool) "entry dominates all" true
    (List.for_all (fun b -> Cfg.Dom.dominates dom 0 b)
       (List.init n (fun b -> b)));
  Alcotest.(check bool) "loop header dominates body" true
    (Cfg.Dom.dominates dom 1 4);
  Alcotest.(check bool) "arm does not dominate latch" false
    (Cfg.Dom.dominates dom 3 4);
  Alcotest.(check bool) "reflexive" true (Cfg.Dom.dominates dom 3 3)

let test_switch_blocks () =
  let src =
    {|int main(void) { int x = 2; int r = 0;
       switch (x) { case 0: r = 1; break; case 1: r = 2; break;
                    case 2: r = 3; break; default: r = 9; }
       return r; }|}
  in
  let flat = Codegen.Compile.compile_flat src in
  let has_jtab =
    Array.exists
      (fun insn -> Risc.Insn.kind insn = Risc.Insn.Computed_jump)
      flat.code
  in
  Alcotest.(check bool) "dense switch uses a jump table" true has_jtab;
  let cfg = Cfg.Analysis.analyze flat in
  (* Every case body must be control dependent on the jtab block. *)
  let jtab_pc = ref (-1) in
  Array.iteri
    (fun pc insn ->
      if Risc.Insn.kind insn = Risc.Insn.Computed_jump then jtab_pc := pc)
    flat.code;
  let jtab_block = cfg.graph.block_of.(!jtab_pc) in
  let dependents =
    Array.to_list cfg.rdf
    |> List.filter (fun deps -> Array.mem jtab_block deps)
  in
  Alcotest.(check bool) "cases depend on the computed jump" true
    (List.length dependents >= 3)

let test_rdf_exitless_proc () =
  (* A procedure that can never return: no block reverse-reaches an
     exit, so RDFs are defined only through deterministic pseudo-exits.
     The analysis must terminate and give every block of the spinning
     procedure a defined control dependence. *)
  let prog =
    { P.procs =
        [ { P.name = "main"; body = [ P.Ins (I.Jal "spin"); P.Ins I.Halt ] };
          { P.name = "spin";
            body =
              [ P.Label "loop";
                P.Ins (I.Bi (I.Eq, 8, 0, "skip"));
                P.Ins (I.Alui (I.Add, 9, 9, 1));
                P.Label "skip";
                P.Ins (I.Alui (I.Add, 8, 8, 1));
                P.Ins (I.J "loop") ] } ];
      data = [];
      entry = "main" }
  in
  let flat = P.resolve prog in
  let cfg = Cfg.Analysis.analyze flat in
  let branch_block = cfg.graph.block_of.(2) in
  let arm_block = cfg.graph.block_of.(3) in
  Alcotest.(check bool) "arm depends on spin branch" true
    (Array.mem branch_block cfg.rdf.(arm_block));
  (* Deterministic: a second analysis gives identical RDFs. *)
  let cfg' = Cfg.Analysis.analyze flat in
  Array.iteri
    (fun b deps ->
      Alcotest.(check (list int)) "stable RDF" (Array.to_list deps)
        (Array.to_list cfg'.rdf.(b)))
    cfg.rdf

let test_workload_cfg_sanity () =
  (* Structural invariants over a real compiled program. *)
  let flat = Workloads.Registry.compile (Workloads.Registry.find "ccom") in
  let cfg = Cfg.Analysis.analyze flat in
  let g = cfg.graph in
  Array.iter
    (fun (b : Cfg.Graph.block) ->
      Alcotest.(check bool) "block non-empty" true (b.stop > b.start);
      List.iter
        (fun s ->
          Alcotest.(check bool) "edge symmetric" true
            (List.mem b.id g.blocks.(s).preds))
        b.succs)
    g.blocks;
  Array.iteri
    (fun pc blk ->
      let b = g.blocks.(blk) in
      Alcotest.(check bool) "block_of consistent" true
        (pc >= b.start && pc < b.stop))
    g.block_of

let suite =
  [ Alcotest.test_case "diamond blocks" `Quick test_blocks_diamond;
    Alcotest.test_case "diamond RDF" `Quick test_rdf_diamond;
    Alcotest.test_case "loop detection" `Quick test_loop_detection;
    Alcotest.test_case "induction marking" `Quick test_induction_marking;
    Alcotest.test_case "loop RDF" `Quick test_rdf_loop;
    Alcotest.test_case "non-invariant bound" `Quick
      test_non_invariant_bound_not_marked;
    Alcotest.test_case "two writes" `Quick test_two_writes_not_induction;
    Alcotest.test_case "conditional update" `Quick
      test_conditional_update_not_induction;
    Alcotest.test_case "nested loops" `Quick test_nested_loops;
    Alcotest.test_case "dominators" `Quick test_dominators;
    Alcotest.test_case "switch blocks" `Quick test_switch_blocks;
    Alcotest.test_case "exit-less proc RDF" `Quick test_rdf_exitless_proc;
    Alcotest.test_case "workload CFG sanity" `Quick test_workload_cfg_sanity ]

(* Cross-machine invariants checked on real compiled programs.

   These hold by construction of the machine models:
   - every machine counts the same instructions (the transformations
     do not depend on the machine);
   - relaxing a constraint never slows the schedule:
       ORACLE <= SP-CD-MF <= SP-CD <= SP <= BASE   (cycles)
       ORACLE <= CD-MF <= CD <= BASE
       SP-CD <= CD
   - a larger window or more flows never hurts;
   - non-unit latencies never speed things up;
   - parallelism is at least 1. *)

let small_sources =
  [ ( "branchy",
      {|int main(void) { int i; int s = 0;
         for (i = 0; i < 200; i = i + 1) {
           if (i % 3 == 0) s = s + i;
           else if (i % 5 == 0) s = s - 1;
         }
         return s; }|} );
    ( "recursive",
      {|int ack(int m, int n) {
         if (m == 0) return n + 1;
         if (n == 0) return ack(m - 1, 1);
         return ack(m - 1, ack(m, n - 1));
       }
       int main(void) { return ack(2, 3); }|} );
    ( "memory",
      {|int a[64];
        int main(void) { int i; int s = 0;
         for (i = 0; i < 64; i = i + 1) a[i] = i * i;
         for (i = 1; i < 64; i = i + 1) a[i] = a[i] + a[i - 1];
         for (i = 0; i < 64; i = i + 8) s = s + a[i];
         return s; }|} );
    ( "floats",
      {|float v[32];
        int main(void) { int i; float s = 0.0;
         for (i = 0; i < 32; i = i + 1) v[i] = i * 0.5;
         for (i = 0; i < 32; i = i + 1)
           if (v[i] > 4.0) s = s + v[i];
         return s; }|} ) ]

let prepared_small =
  lazy
    (List.map
       (fun (name, src) -> (name, Harness.prepare_source ~name src))
       small_sources)

let prepared_workloads =
  lazy
    (List.map
       (fun w ->
         (w.Workloads.Registry.name, Harness.prepare ~fuel:60_000 w))
       Workloads.Registry.all)

let all_prepared () =
  Lazy.force prepared_small @ Lazy.force prepared_workloads

let analyze ?unroll ?predictor p m =
  List.hd (Harness.Run.on_prepared p [ Harness.spec ?unroll ?predictor m ])

let cycles p m = (analyze p m).Ilp.Analyze.cycles

let test_counted_identical () =
  let check (name, p) =
    let counts =
      List.map
        (fun m -> (analyze p m).Ilp.Analyze.counted)
        Ilp.Machine.all_paper
    in
    match counts with
    | c :: rest ->
      List.iter
        (fun c' -> Alcotest.(check int) (name ^ " counted") c c')
        rest
    | [] -> ()
  in
  List.iter check (all_prepared ())

let test_machine_ordering () =
  let open Ilp.Machine in
  let check (name, p) =
    let c = cycles p in
    let le a b am bm =
      if not (a <= b) then
        Alcotest.failf "%s: cycles(%s)=%d > cycles(%s)=%d" name am a bm b
    in
    le (c oracle) (c sp_cd_mf) "ORACLE" "SP-CD-MF";
    le (c sp_cd_mf) (c sp_cd) "SP-CD-MF" "SP-CD";
    le (c sp_cd) (c sp) "SP-CD" "SP";
    le (c sp) (c base) "SP" "BASE";
    le (c oracle) (c cd_mf) "ORACLE" "CD-MF";
    le (c cd_mf) (c cd) "CD-MF" "CD";
    le (c cd) (c base) "CD" "BASE";
    le (c sp_cd) (c cd) "SP-CD" "CD"
  in
  List.iter check (all_prepared ())

let test_window_monotone () =
  let check (name, p) =
    let widths = [ 8; 64; 512 ] in
    let cs =
      List.map
        (fun w -> cycles p (Ilp.Machine.with_window w Ilp.Machine.sp))
        widths
    in
    let unlimited = cycles p Ilp.Machine.sp in
    let rec mono = function
      | a :: (b :: _ as rest) ->
        if a < b then
          Alcotest.failf "%s: smaller window beat larger one" name
        else mono rest
      | _ -> ()
    in
    mono (cs @ [ unlimited ])
  in
  List.iter check (Lazy.force prepared_small)

let test_flows_monotone () =
  let check (name, p) =
    let ks = [ 1; 2; 4 ] in
    let cs =
      List.map
        (fun k -> cycles p (Ilp.Machine.with_flows (Some k) Ilp.Machine.cd))
        ks
    in
    let unbounded = cycles p Ilp.Machine.cd_mf in
    let rec mono = function
      | a :: (b :: _ as rest) ->
        if a < b then Alcotest.failf "%s: fewer flows beat more" name
        else mono rest
      | _ -> ()
    in
    mono (cs @ [ unbounded ])
  in
  List.iter check (Lazy.force prepared_small)

let test_latency_never_faster () =
  let check (name, p) =
    List.iter
      (fun m ->
        let unit = cycles p m in
        let lat =
          cycles p
            (Ilp.Machine.with_latencies Ilp.Machine.realistic_latencies m)
        in
        if lat < unit then
          Alcotest.failf "%s/%s: latencies sped things up" name
            m.Ilp.Machine.name)
      [ Ilp.Machine.base; Ilp.Machine.sp_cd_mf; Ilp.Machine.oracle ]
  in
  List.iter check (Lazy.force prepared_small)

let test_parallelism_at_least_one () =
  let check (name, p) =
    List.iter
      (fun m ->
        let r = analyze p m in
        if r.Ilp.Analyze.parallelism < 1. -. 1e-9 then
          Alcotest.failf "%s/%s: parallelism %f < 1" name r.machine
            r.parallelism;
        if r.cycles > r.counted then
          Alcotest.failf "%s/%s: cycles exceed instruction count" name
            r.machine)
      Ilp.Machine.all_paper
  in
  List.iter check (all_prepared ())

let test_unrolling_reduces_counted () =
  (* Removing loop overhead can only shrink the counted instructions. *)
  let check (name, p) =
    let with_u = analyze ~unroll:true p Ilp.Machine.oracle in
    let without = analyze ~unroll:false p Ilp.Machine.oracle in
    if with_u.Ilp.Analyze.counted > without.Ilp.Analyze.counted then
      Alcotest.failf "%s: unrolling grew the trace" name;
    if with_u.Ilp.Analyze.cycles > without.Ilp.Analyze.cycles then
      Alcotest.failf "%s: unrolling slowed the oracle" name
  in
  List.iter check (all_prepared ())

let test_oracle_equals_data_chain () =
  (* The oracle schedule must not depend on the predictor. *)
  let _, p = List.hd (Lazy.force prepared_small) in
  let bad = { Predict.Predictor.name = "always-wrong";
              predict = (fun ~pc:_ ~taken -> not taken);
              stateful = false } in
  let with_profile = analyze p Ilp.Machine.oracle in
  let with_bad = analyze ~predictor:(`Custom bad) p Ilp.Machine.oracle in
  Alcotest.(check int) "oracle ignores predictor" with_profile.cycles
    with_bad.cycles

let test_perfect_prediction_sp_between () =
  (* With a perfect predictor, SP has no mispredictions left. *)
  let check (name, p) =
    let r =
      analyze ~predictor:`Perfect p Ilp.Machine.sp
    in
    (* Computed jumps still count as mispredictions under SP. *)
    let cjumps =
      let count = ref 0 in
      Vm.Trace.iter
        (fun ~pc ~aux:_ ->
          match p.Harness.info.kind.(pc) with
          | Risc.Insn.Computed_jump -> incr count
          | _ -> ())
        p.trace;
      !count
    in
    Alcotest.(check int) (name ^ " only cjump mispredicts") cjumps
      r.Ilp.Analyze.mispredicts
  in
  List.iter check (Lazy.force prepared_small)

(* Value-trained copy of "branchy", so the vp dimension of the lattice
   is live (untrained, vp machines degrade to their base point and the
   property below would hold vacuously on that axis). *)
let prepared_trained =
  lazy
    (Harness.prepare_source ~train_values:true ~name:"branchy-trained"
       (List.assoc "branchy" small_sources))

let test_lattice_monotone =
  (* Adding a constraint combinator never speeds the schedule: for any
     random lattice point and any relaxation of it, leq holds and the
     more constrained machine takes at least as many cycles. *)
  QCheck.Test.make ~name:"lattice order bounds cycles" ~count:60
    QCheck.(pair int int)
    (fun (a, b) ->
      let open Ilp.Machine in
      let ma = random a in
      let relaxations =
        [ Window None; Fetch None; Flows None; Value_predict true;
          Control Oracle ]
      in
      let chosen =
        List.filteri (fun i _ -> (b lsr i) land 1 = 1) relaxations
      in
      let mb = of_constraints (constraints ma @ chosen) in
      let p = Lazy.force prepared_trained in
      leq ma mb && cycles p ma >= cycles p mb)

let gen_random_program = Gen_minic.gen_program

let test_random_program_invariants =
  QCheck.Test.make ~name:"machine ordering on random programs" ~count:40
    (QCheck.make ~print:(fun s -> s) gen_random_program)
    (fun src ->
      let p = Harness.prepare_source ~name:"random" src in
      let c m = (analyze p m).Ilp.Analyze.cycles in
      let open Ilp.Machine in
      c oracle <= c sp_cd_mf
      && c sp_cd_mf <= c sp_cd
      && c sp_cd <= c sp
      && c sp <= c base
      && c oracle <= c cd_mf
      && c cd_mf <= c cd
      && c cd <= c base)

let suite =
  [ Alcotest.test_case "counted identical" `Quick test_counted_identical;
    Alcotest.test_case "machine ordering" `Quick test_machine_ordering;
    Alcotest.test_case "window monotone" `Quick test_window_monotone;
    Alcotest.test_case "flows monotone" `Quick test_flows_monotone;
    Alcotest.test_case "latency never faster" `Quick
      test_latency_never_faster;
    Alcotest.test_case "parallelism >= 1" `Quick
      test_parallelism_at_least_one;
    Alcotest.test_case "unrolling shrinks trace" `Quick
      test_unrolling_reduces_counted;
    Alcotest.test_case "oracle ignores predictor" `Quick
      test_oracle_equals_data_chain;
    Alcotest.test_case "perfect prediction" `Quick
      test_perfect_prediction_sp_between;
    QCheck_alcotest.to_alcotest test_lattice_monotone;
    QCheck_alcotest.to_alcotest test_random_program_invariants ]

(* The observability layer: registry semantics, histogram bucket
   edges, span nesting and merge determinism, exporter goldens, and
   the zero-interference property — enabling observability never
   changes a pipeline result. *)

module M = Obs.Metrics
module S = Obs.Span

(* --- registry ------------------------------------------------------ *)

let test_counter_basics () =
  let r = M.create () in
  let c = M.counter r ~help:"h" "x_total" in
  M.incr c;
  M.add c 4;
  Alcotest.(check int) "value" 5 (M.counter_value c);
  (* registration is idempotent by name: same cell *)
  let c' = M.counter r "x_total" in
  M.incr c';
  Alcotest.(check int) "same cell" 6 (M.counter_value c);
  (* re-registering as a different kind is refused *)
  (match M.gauge r "x_total" with
  | _ -> Alcotest.fail "kind clash accepted"
  | exception Invalid_argument _ -> ());
  M.reset_counter c;
  Alcotest.(check int) "reset" 0 (M.counter_value c)

let test_gauge_max () =
  let r = M.create () in
  let g = M.gauge r "hw" in
  M.set_max g 5;
  M.set_max g 3;
  Alcotest.(check int) "max wins" 5 (M.gauge_value g);
  M.set_max g 7;
  Alcotest.(check int) "raised" 7 (M.gauge_value g)

let test_histogram_bucket_edges () =
  let r = M.create () in
  let h = M.histogram r ~buckets:[| 1; 2; 4; 8 |] "lat" in
  List.iter (M.observe h) [ 0; 1; 2; 3; 4; 5; 8; 9 ];
  match M.snapshot r with
  | [ { M.name = "lat"; value = M.Histogram { bounds; counts; sum }; _ } ] ->
    Alcotest.(check (array int)) "bounds" [| 1; 2; 4; 8 |] bounds;
    (* inclusive upper bounds: 0,1 | 2 | 3,4 | 5,8 | overflow 9 *)
    Alcotest.(check (array int)) "counts" [| 2; 1; 2; 2; 1 |] counts;
    Alcotest.(check int) "sum" 32 sum
  | _ -> Alcotest.fail "one histogram expected"

let test_snapshot_sorted () =
  let r = M.create () in
  M.incr (M.counter r "zz_total");
  M.incr (M.counter r "aa_total");
  M.set_max (M.gauge r "mm") 1;
  Alcotest.(check (list string)) "sorted by name"
    [ "aa_total"; "mm"; "zz_total" ]
    (List.map (fun (s : M.snap) -> s.name) (M.snapshot r))

(* --- spans --------------------------------------------------------- *)

let test_span_nesting () =
  let b = S.buffer () in
  let v =
    S.with_span b ~workload:"w" "outer" (fun () ->
        S.with_span b "inner" (fun () -> 41) + 1)
  in
  Alcotest.(check int) "value through" 42 v;
  let sk = Array.to_list (S.skeleton (S.spans b)) in
  Alcotest.(check bool) "open order, depths" true
    (sk = [ ("outer", "w", "", 0); ("inner", "", "", 1) ]);
  Array.iter
    (fun s -> Alcotest.(check bool) "closed" true (S.dur_ns s >= 0L))
    (S.spans b)

let test_span_exception_safety () =
  let b = S.buffer () in
  (match S.with_span b "boom" (fun () -> failwith "x") with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure _ -> ());
  (* the span closed on the way out, and nesting state unwound *)
  let spans = S.spans b in
  Alcotest.(check int) "recorded" 1 (Array.length spans);
  Alcotest.(check bool) "closed" true (spans.(0).S.sp_stop_ns >= 0L);
  S.with_span b "after" (fun () -> ());
  Alcotest.(check int) "depth unwound" 0 (S.spans b).(1).S.sp_depth

let test_disabled_span_buffer () =
  Alcotest.(check bool) "inert" false (S.active S.disabled);
  Alcotest.(check int) "records nothing"
    (Array.length (S.spans S.disabled))
    (S.with_span S.disabled "x" (fun () ->
         Array.length (S.spans S.disabled)))

(* --- exporter goldens ---------------------------------------------- *)

let golden_spans =
  [| S.span ~workload:"awk" ~start_ns:0L ~stop_ns:1_500_000L "compile";
     S.span ~workload:"awk" ~machine:"SP" ~depth:1 ~start_ns:10L
       ~stop_ns:35L "analyze" |]

let golden_metrics =
  [ { M.name = "fault_planned_total{kind=\"bit-flip\"}"; help = "faults";
      value = M.Counter 2 };
    { M.name = "lat_ns"; help = "";
      value =
        M.Histogram { bounds = [| 1; 2 |]; counts = [| 2; 1; 1 |]; sum = 9 } }
  ]

let test_export_jsonl () =
  let buf = Buffer.create 256 in
  Obs.Export.jsonl buf ~spans:golden_spans ~metrics:golden_metrics;
  Alcotest.(check string) "jsonl"
    "{\"type\":\"span\",\"stage\":\"compile\",\"workload\":\"awk\",\
     \"machine\":\"\",\"depth\":0,\"start_ns\":0,\"dur_ns\":1500000}\n\
     {\"type\":\"span\",\"stage\":\"analyze\",\"workload\":\"awk\",\
     \"machine\":\"SP\",\"depth\":1,\"start_ns\":10,\"dur_ns\":25}\n\
     {\"type\":\"counter\",\"name\":\"fault_planned_total{kind=\\\"bit-flip\\\"}\",\
     \"value\":2}\n\
     {\"type\":\"histogram\",\"name\":\"lat_ns\",\"bounds\":[1,2],\
     \"counts\":[2,1,1],\"sum\":9}\n"
    (Buffer.contents buf)

let test_export_prometheus () =
  let buf = Buffer.create 256 in
  Obs.Export.prometheus buf golden_metrics;
  Alcotest.(check string) "prometheus"
    "# HELP fault_planned_total faults\n\
     # TYPE fault_planned_total counter\n\
     fault_planned_total{kind=\"bit-flip\"} 2\n\
     # TYPE lat_ns histogram\n\
     lat_ns_bucket{le=\"1\"} 2\n\
     lat_ns_bucket{le=\"2\"} 3\n\
     lat_ns_bucket{le=\"+Inf\"} 4\n\
     lat_ns_sum 9\n\
     lat_ns_count 4\n"
    (Buffer.contents buf)

let test_export_tree () =
  let buf = Buffer.create 256 in
  Obs.Export.tree buf ~metrics:golden_metrics golden_spans;
  let s = Buffer.contents buf in
  let contains needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "span line" true (contains "compile w=awk");
  Alcotest.(check bool) "duration" true (contains "1.500 ms");
  Alcotest.(check bool) "nested indent" true (contains "\n    analyze");
  Alcotest.(check bool) "counter line" true
    (contains "fault_planned_total{kind=\"bit-flip\"}");
  Alcotest.(check bool) "histogram summary" true (contains "count=4 sum=9")

(* --- pipeline integration ------------------------------------------ *)

let specs = [ Harness.spec Ilp.Machine.sp; Harness.spec Ilp.Machine.sp_cd_mf ]

let ws3 =
  List.filter
    (fun w ->
      List.mem w.Workloads.Registry.name [ "awk"; "eqntott"; "matrix300" ])
    Workloads.Registry.all

let run_obs ~jobs ~stream ws =
  let obs = Obs.Ctx.create ~registry:(M.create ()) () in
  match
    Harness.Run.exec
      (Harness.Run.config ~jobs ~fuel:40_000 ~stream ~obs specs)
      ws
  with
  | Ok items ->
    (items, S.skeleton (Obs.Ctx.spans obs), Obs.Ctx.snapshot obs)
  | Error e -> Alcotest.fail (Pipeline_error.to_string e)

let outcomes items =
  List.map
    (fun it ->
      match it.Harness.Run.it_outcome with
      | Ok rs ->
        List.map
          (fun (r : Ilp.Analyze.result) ->
            (r.machine, r.counted, r.cycles, r.mispredicts))
          rs
      | Error e -> Alcotest.fail (Pipeline_error.to_string e))
    items

let test_spans_per_stage () =
  let _, skel, _ = run_obs ~jobs:1 ~stream:false ws3 in
  (* exactly one compile, execute and analyze span per workload, at
     depth 0, in pipeline order *)
  let expected =
    List.concat_map
      (fun w ->
        let n = w.Workloads.Registry.name in
        [ ("compile", n, "", 0); ("execute", n, "", 0);
          ("analyze", n, "", 0) ])
      ws3
  in
  Alcotest.(check bool) "stage spans" true (Array.to_list skel = expected)

let test_parallel_determinism () =
  let check ~stream =
    let i1, sk1, sn1 = run_obs ~jobs:1 ~stream ws3 in
    let i4, sk4, sn4 = run_obs ~jobs:4 ~stream ws3 in
    Alcotest.(check bool)
      (Printf.sprintf "results identical (stream=%b)" stream)
      true
      (outcomes i1 = outcomes i4);
    Alcotest.(check bool)
      (Printf.sprintf "span skeleton identical (stream=%b)" stream)
      true (sk1 = sk4);
    Alcotest.(check bool)
      (Printf.sprintf "metric snapshot identical (stream=%b)" stream)
      true (sn1 = sn4)
  in
  check ~stream:false;
  check ~stream:true

let test_counters_in_global_registry () =
  Harness.Counters.reset ();
  let w = Workloads.Registry.find "awk" in
  let p = Harness.prepare ~fuel:30_000 w in
  let _ = Harness.Run.on_prepared p specs in
  let snap = M.snapshot M.global in
  let value name =
    match
      List.find_opt (fun (s : M.snap) -> s.name = name) snap
    with
    | Some { M.value = M.Counter v; _ } -> v
    | _ -> Alcotest.failf "missing counter %s" name
  in
  Alcotest.(check int) "executions absorbed"
    (Harness.Counters.executions ())
    (value "pipeline_executions_total");
  Alcotest.(check int) "passes absorbed"
    (Harness.Counters.passes ())
    (value "pipeline_trace_passes_total");
  Alcotest.(check int) "entries absorbed"
    (Harness.Counters.entries ())
    (value "pipeline_trace_entries_total")

let test_jobs_validation () =
  let expect_invalid what = function
    | Ok _ -> Alcotest.fail (what ^ ": jobs=0 accepted")
    | Error (e : Pipeline_error.t) ->
      (match e.cause with
      | Pipeline_error.Invalid_request _ -> ()
      | _ -> Alcotest.fail (what ^ ": wrong cause"));
      Alcotest.(check int) (what ^ " exit code") 2 (Pipeline_error.exit_code e);
      Pipeline_error.to_string e
  in
  let a =
    expect_invalid "Run.exec"
      (Harness.Run.exec (Harness.Run.config ~jobs:0 specs) ws3)
  in
  let b =
    expect_invalid "Fuzz.run"
      (Harness.Fuzz.run ~fuel:10_000 ~jobs:0 ~seed:1 ~cases:1 ())
  in
  Alcotest.(check string) "same message across surfaces" a b

(* qcheck: observability is read-only — an enabled context never
   changes any analysis number, for arbitrary workload/fuel choices. *)
let prop_obs_zero_interference =
  QCheck.Test.make ~count:20 ~name:"enabled obs never changes results"
    (QCheck.pair (QCheck.int_range 0 9) (QCheck.int_range 2_000 30_000))
    (fun (wi, fuel) ->
      let w = List.nth Workloads.Registry.all wi in
      let run obs =
        match
          Harness.Run.exec (Harness.Run.config ~fuel ~obs specs) [ w ]
        with
        | Ok items -> outcomes items
        | Error _ -> []
      in
      run Obs.Ctx.disabled
      = run (Obs.Ctx.create ~registry:(M.create ()) ()))

let suite =
  [ Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "gauge high-water mark" `Quick test_gauge_max;
    Alcotest.test_case "histogram bucket edges" `Quick
      test_histogram_bucket_edges;
    Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick
      test_span_exception_safety;
    Alcotest.test_case "disabled buffer is inert" `Quick
      test_disabled_span_buffer;
    Alcotest.test_case "jsonl golden" `Quick test_export_jsonl;
    Alcotest.test_case "prometheus golden" `Quick test_export_prometheus;
    Alcotest.test_case "tree export" `Quick test_export_tree;
    Alcotest.test_case "one span per stage" `Quick test_spans_per_stage;
    Alcotest.test_case "jobs=4 == sequential" `Slow
      test_parallel_determinism;
    Alcotest.test_case "Counters live in the registry" `Quick
      test_counters_in_global_registry;
    Alcotest.test_case "jobs validated everywhere" `Quick
      test_jobs_validation;
    QCheck_alcotest.to_alcotest prop_obs_zero_interference ]

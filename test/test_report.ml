(* Report rendering and harness plumbing tests. *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_fnum () =
  Alcotest.(check string) "small two decimals" "2.14" (Report.Table.fnum 2.14);
  Alcotest.(check string) "medium" "99.90" (Report.Table.fnum 99.9);
  Alcotest.(check string) "large whole" "243" (Report.Table.fnum 242.77);
  Alcotest.(check string) "huge" "68324" (Report.Table.fnum 68324.)

let test_table_render () =
  let s =
    Report.Table.render ~title:"T" ~header:[ "A"; "Bee" ]
      ~align:[ Report.Table.Left; Report.Table.Right ]
      [ [ "x"; "1" ]; [ "-" ]; [ "yy"; "22" ] ]
  in
  Alcotest.(check bool) "title" true (contains s "T\n=");
  Alcotest.(check bool) "header" true (contains s "A   Bee");
  Alcotest.(check bool) "right aligned" true (contains s "yy   22");
  Alcotest.(check bool) "rule row" true (contains s "-----")

let test_table_ragged_rows () =
  let s =
    Report.Table.render ~header:[ "A"; "B"; "C" ]
      ~align:[ Left; Left; Left ]
      [ [ "only" ] ]
  in
  Alcotest.(check bool) "missing cells tolerated" true (contains s "only")

let test_bars () =
  let s = Report.Chart.bars [ ("aa", 10.); ("b", 5.) ] in
  Alcotest.(check bool) "labels padded" true (contains s "aa ");
  Alcotest.(check bool) "value printed" true (contains s "10.00");
  Alcotest.(check bool) "has bars" true (contains s "#")

let test_grouped_bars () =
  let s =
    Report.Chart.grouped_bars ~group_names:[ "g1"; "g2" ]
      [ ("row", [ 2.; 400. ]) ]
  in
  Alcotest.(check bool) "both groups" true
    (contains s "g1" && contains s "g2");
  Alcotest.(check bool) "log scale keeps small bar visible" true
    (contains s "2.00")

let test_cdf () =
  let s =
    Report.Chart.cdf ~x_label:"d" [ [ (1, 0.25); (10, 0.5); (100, 1.0) ] ]
  in
  Alcotest.(check bool) "axis" true (contains s "1.00 |");
  Alcotest.(check bool) "x label" true (contains s "(d, log scale)");
  Alcotest.(check bool) "curve plotted" true (contains s "*")

let test_harness_prepare_source () =
  let p =
    Harness.prepare_source ~name:"tiny" "int main(void) { return 3; }"
  in
  Alcotest.(check (option int)) "halted" (Some 3) p.halted;
  Alcotest.(check bool) "trace non-empty" true (p.steps > 0);
  let r =
    List.hd (Harness.Run.on_prepared p [ Harness.spec Ilp.Machine.oracle ])
  in
  Alcotest.(check bool) "analyzable" true (r.Ilp.Analyze.counted > 0)

let test_harness_branch_stats () =
  let p =
    Harness.prepare_source ~name:"b"
      {|int main(void) { int i; int s = 0;
         for (i = 0; i < 50; i = i + 1) if (i % 2) s = s + 1;
         return s; }|}
  in
  let bs = Harness.branch_stats p in
  Alcotest.(check bool) "counts branches" true (bs.dyn_branches > 50);
  Alcotest.(check bool) "alternating branch poorly predicted" true
    (bs.rate < 90.)

let suite =
  [ Alcotest.test_case "fnum" `Quick test_fnum;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table ragged" `Quick test_table_ragged_rows;
    Alcotest.test_case "bars" `Quick test_bars;
    Alcotest.test_case "grouped bars" `Quick test_grouped_bars;
    Alcotest.test_case "cdf" `Quick test_cdf;
    Alcotest.test_case "harness source" `Quick test_harness_prepare_source;
    Alcotest.test_case "harness stats" `Quick test_harness_branch_stats ]

(* The domain pool and the parallel fan-out built on it.  The contract
   under test is determinism: for any --jobs value, either scheduler
   and any scheduling, parallel runs must be bit-identical to
   sequential ones — results, completeness tags, and the harness
   Counters totals — and exceptions raised inside pool tasks must
   surface exactly once, through the typed-error barrier, without
   wedging the pool.

   The pool-level tests are a functor over {!Stdx.Pool.S} instantiated
   for both implementations, so Locked and Steal are held to the exact
   same sealed contract. *)

let pp_result fmt (r : Ilp.Analyze.result) =
  Format.fprintf fmt
    "{machine=%s; counted=%d; seq=%d; cycles=%d; par=%.6f; dyn=%d; mis=%d; \
     segs=%d; compl=%s}"
    r.machine r.counted r.seq_cycles r.cycles r.parallelism r.dyn_branches
    r.mispredicts
    (Array.length r.segments)
    (Pipeline_error.completeness_tag r.completeness)

let equal_result (a : Ilp.Analyze.result) (b : Ilp.Analyze.result) =
  a.machine = b.machine && a.counted = b.counted
  && a.seq_cycles = b.seq_cycles && a.cycles = b.cycles
  && a.parallelism = b.parallelism && a.dyn_branches = b.dyn_branches
  && a.mispredicts = b.mispredicts && a.segments = b.segments
  && a.completeness = b.completeness

let result_t = Alcotest.testable pp_result equal_result

let metric name snaps =
  List.find_map
    (fun (s : Obs.Metrics.snap) -> if s.name = name then Some s.value else None)
    snaps

(* ------------------------------------------------------------------ *)
(* The sealed contract, checked against any implementation. *)

module Contract (P : Stdx.Pool.S) = struct
  let test_map_order () =
    P.with_pool ~jobs:4 (fun pool ->
        let input = Array.init 100 (fun i -> i) in
        (* uneven work so completion order differs from input order *)
        let f i =
          let acc = ref 0 in
          for k = 0 to (i mod 7) * 1000 do
            acc := !acc + k
          done;
          ignore !acc;
          i * i
        in
        let got = P.map_array pool f input in
        Alcotest.(check (array int))
          "results in input order" (Array.map f input) got)

  let test_jobs_one_inline () =
    P.with_pool ~jobs:1 (fun pool ->
        Alcotest.(check int) "jobs clamped" 1 (P.jobs pool);
        let got = P.map_list pool (fun x -> x + 1) [ 1; 2; 3 ] in
        Alcotest.(check (list int)) "inline map" [ 2; 3; 4 ] got)

  let test_exception_surfaces_and_pool_survives () =
    P.with_pool ~jobs:3 (fun pool ->
        (* The lowest-indexed failure is the one re-raised. *)
        (match
           P.map_array pool
             (fun i -> if i mod 4 = 2 then failwith (string_of_int i) else i)
             (Array.init 32 (fun i -> i))
         with
        | _ -> Alcotest.fail "expected Failure to propagate"
        | exception Failure msg ->
          Alcotest.(check string) "lowest-indexed exception" "2" msg);
        (* The batch drained fully before re-raising: the pool is
           quiescent and reusable. *)
        let got = P.map_list pool (fun x -> 2 * x) [ 1; 2; 3 ] in
        Alcotest.(check (list int)) "pool reusable" [ 2; 4; 6 ] got)

  let test_nested_maps () =
    P.with_pool ~jobs:2 (fun pool ->
        (* A task that submits its own batch: the submitter helps drain
           the queue, so this must complete rather than deadlock. *)
        let got =
          P.map_list pool
            (fun i -> P.map_list pool (fun j -> (10 * i) + j) [ 1; 2; 3 ])
            [ 1; 2 ]
        in
        Alcotest.(check (list (list int)))
          "nested batches" [ [ 11; 12; 13 ]; [ 21; 22; 23 ] ] got)

  let test_async_await () =
    P.with_pool ~jobs:3 (fun pool ->
        let futs = List.init 20 (fun i -> P.async pool (fun () -> i * 3)) in
        let got = List.map (fun f -> P.await pool f) futs in
        Alcotest.(check (list int))
          "futures resolve in submission order"
          (List.init 20 (fun i -> i * 3))
          got;
        (* a failed task is boxed, not fatal *)
        let bad = P.async pool (fun () -> failwith "boxed") in
        (match P.await pool bad with
        | _ -> Alcotest.fail "expected the boxed Failure"
        | exception Failure msg ->
          Alcotest.(check string) "boxed exception surfaces" "boxed" msg);
        let ok = P.async pool (fun () -> 7) in
        Alcotest.(check int) "pool survives a failed future" 7
          (P.await pool ok);
        Alcotest.(check bool) "poll after await" true (P.poll ok))

  let test_await_helps () =
    (* jobs=2: one worker domain.  A future that awaits another future
       can only finish if awaiting helps run queued tasks. *)
    P.with_pool ~jobs:2 (fun pool ->
        let inner = P.async pool (fun () -> 21) in
        let outer = P.async pool (fun () -> 2 * P.await pool inner) in
        Alcotest.(check int) "await helps instead of deadlocking" 42
          (P.await pool outer))

  let test_shutdown () =
    let pool = P.create ~jobs:3 () in
    P.shutdown pool;
    P.shutdown pool;  (* idempotent *)
    match P.map_list pool (fun x -> x) [ 1 ] with
    | _ -> Alcotest.fail "expected Invalid_argument after shutdown"
    | exception Invalid_argument _ -> ()

  (* The scheduler-transition probe and its Obs wiring:
     submitted/completed totals are exact, the high-water gauges stay
     within the pool's physical bounds, and the pool is quiescent
     after a batch. *)
  let test_probe_gauges () =
    let reg = Obs.Metrics.create () in
    let n = 40 in
    P.with_pool ~jobs:3 (fun pool ->
        P.set_probe pool (Some (Obs.Probe.pool reg));
        ignore (P.map_array pool (fun i -> i * i) (Array.init n (fun i -> i)));
        let st = P.stats pool in
        Alcotest.(check int) "queue drained" 0 st.Stdx.Pool.depth;
        Alcotest.(check int) "deques drained" 0 st.Stdx.Pool.deque_depth;
        Alcotest.(check int) "nothing in flight" 0 st.Stdx.Pool.in_flight;
        Alcotest.(check int) "submitted total" n st.Stdx.Pool.submitted;
        Alcotest.(check int) "completed total" n st.Stdx.Pool.completed;
        Alcotest.(check bool) "steals never exceed attempts" true
          (st.Stdx.Pool.steals <= st.Stdx.Pool.steal_attempts));
    let snaps = Obs.Metrics.snapshot reg in
    (match (metric "pool_tasks_submitted_total" snaps,
            metric "pool_tasks_completed_total" snaps) with
    | Some (Obs.Metrics.Counter s), Some (Obs.Metrics.Counter c) ->
      Alcotest.(check int) "submitted counter" n s;
      Alcotest.(check int) "completed counter" n c
    | _ -> Alcotest.fail "pool counters missing");
    match (metric "pool_queue_depth_highwater" snaps,
           metric "pool_deque_depth_highwater" snaps,
           metric "pool_tasks_in_flight_highwater" snaps) with
    | Some (Obs.Metrics.Gauge d), Some (Obs.Metrics.Gauge dd),
      Some (Obs.Metrics.Gauge f) ->
      (* the first submit observes depth 1 before any worker pops *)
      Alcotest.(check bool) "depth high-water within queue bounds" true
        (d >= 1 && d <= n);
      (* one deque's depth can never exceed the aggregate observed at
         the same instant, so the high-waters are ordered too *)
      Alcotest.(check bool) "deque high-water within aggregate" true
        (dd >= 1 && dd <= d);
      Alcotest.(check bool) "in-flight high-water within pool width" true
        (f >= 1 && f <= 3)
    | _ -> Alcotest.fail "pool gauges missing"

  let test_probe_inline_jobs_one () =
    (* the jobs=1 inline path fires the probe too: totals are identical
       whatever the pool width *)
    let reg = Obs.Metrics.create () in
    P.with_pool ~jobs:1 (fun pool ->
        P.set_probe pool (Some (Obs.Probe.pool reg));
        ignore (P.map_list pool (fun x -> x + 1) [ 1; 2; 3 ]);
        let st = P.stats pool in
        Alcotest.(check int) "submitted inline" 3 st.Stdx.Pool.submitted;
        Alcotest.(check int) "completed inline" 3 st.Stdx.Pool.completed);
    match metric "pool_tasks_completed_total" (Obs.Metrics.snapshot reg) with
    | Some (Obs.Metrics.Counter 3) -> ()
    | _ -> Alcotest.fail "inline path missed the probe"

  let suite name =
    let case label = Alcotest.test_case (name ^ ": " ^ label) in
    [ case "map_array preserves order" `Quick test_map_order;
      case "jobs=1 runs inline" `Quick test_jobs_one_inline;
      case "exceptions surface, pool survives" `Quick
        test_exception_surfaces_and_pool_survives;
      case "nested maps don't deadlock" `Quick test_nested_maps;
      case "async/await box values and exceptions" `Quick test_async_await;
      case "await helps on a narrow pool" `Quick test_await_helps;
      case "shutdown is idempotent and final" `Quick test_shutdown;
      case "probe gauges track the queues" `Quick test_probe_gauges;
      case "probe fires on the inline path" `Quick
        test_probe_inline_jobs_one ]
end

module Locked_contract = Contract (Stdx.Pool.Locked)
module Steal_contract = Contract (Stdx.Pool.Steal)

(* ------------------------------------------------------------------ *)
(* The facade: scheduler selection is first-class and observable, and
   the stealer actually steals when fed an uneven fine-grained batch. *)

let test_facade_scheduler_selection () =
  Alcotest.(check bool) "default is steal" true
    (Stdx.Pool.default_scheduler = Stdx.Pool.Steal);
  List.iter
    (fun (name, sched) ->
      Alcotest.(check string) "name round-trips" name
        (Stdx.Pool.scheduler_name sched);
      (match Stdx.Pool.scheduler_of_string name with
      | Some s ->
        Alcotest.(check bool) ("of_string " ^ name) true (s = sched)
      | None -> Alcotest.fail ("scheduler_of_string rejected " ^ name));
      Stdx.Pool.with_pool ~scheduler:sched ~jobs:2 (fun pool ->
          Alcotest.(check bool)
            ("pool reports " ^ name)
            true
            (Stdx.Pool.scheduler pool = sched);
          let got = Stdx.Pool.map_list pool (fun x -> x * x) [ 1; 2; 3 ] in
          Alcotest.(check (list int)) (name ^ " maps") [ 1; 4; 9 ] got))
    Stdx.Pool.schedulers;
  Alcotest.(check bool) "unknown scheduler rejected" true
    (Stdx.Pool.scheduler_of_string "fifo" = None)

let test_steal_counters_move () =
  (* Feed the stealer a batch whose tasks are deliberately uneven so
     idle workers must steal from the deep deque.  Steal *attempts*
     are guaranteed (a worker with an empty deque always probes
     victims before parking); successful steals depend on timing, so
     only the attempt counter is asserted. *)
  Stdx.Pool.with_pool ~scheduler:Stdx.Pool.Steal ~jobs:4 (fun pool ->
      let f i =
        let acc = ref 0 in
        for k = 0 to (i mod 11) * 2000 do
          acc := !acc + k
        done;
        !acc
      in
      ignore (Stdx.Pool.map_array pool f (Array.init 400 (fun i -> i)));
      let st = Stdx.Pool.stats pool in
      Alcotest.(check bool) "stealer probed victims" true
        (st.Stdx.Pool.steal_attempts > 0);
      Alcotest.(check int) "all tasks accounted" 400 st.Stdx.Pool.submitted;
      Alcotest.(check int) "all tasks completed" 400 st.Stdx.Pool.completed)

(* ------------------------------------------------------------------ *)
(* Parallel fan-out determinism: Run.exec (streaming) at 4 domains
   against the sequential path, all ten workloads, all seven
   machines.  jobs=4 runs on the default scheduler (steal), so this is
   also the end-to-end bit-identity check for the new scheduler. *)

type counters = {
  executions : int;
  passes : int;
  entries : int;
  state_entries : int;
  profiled : int;
}

let snapshot () =
  { executions = Harness.Counters.executions ();
    passes = Harness.Counters.passes ();
    entries = Harness.Counters.entries ();
    state_entries = Harness.Counters.state_entries ();
    profiled = Harness.Counters.profiled_entries () }

let delta a b =
  { executions = b.executions - a.executions;
    passes = b.passes - a.passes;
    entries = b.entries - a.entries;
    state_entries = b.state_entries - a.state_entries;
    profiled = b.profiled - a.profiled }

let counters_t =
  Alcotest.testable
    (fun fmt c ->
      Format.fprintf fmt "{exec=%d; passes=%d; entries=%d; states=%d; prof=%d}"
        c.executions c.passes c.entries c.state_entries c.profiled)
    ( = )

let fuel = 100_000

let specs = List.map (fun m -> Harness.spec m) Ilp.Machine.all_paper

let run_all ~jobs ws =
  match
    Harness.Run.exec (Harness.Run.config ~jobs ~fuel ~stream:true specs) ws
  with
  | Ok items -> List.map (fun it -> it.Harness.Run.it_outcome) items
  | Error e -> Alcotest.fail (Pipeline_error.to_string e)

let test_streaming_all_deterministic () =
  let ws = Workloads.Registry.all in
  let c0 = snapshot () in
  let seq = run_all ~jobs:1 ws in
  let c1 = snapshot () in
  let par = run_all ~jobs:4 ws in
  let c2 = snapshot () in
  Alcotest.(check int) "one outcome per workload" (List.length ws)
    (List.length par);
  List.iteri
    (fun i (s, p) ->
      let name = (List.nth ws i).Workloads.Registry.name in
      match (s, p) with
      | Ok rs, Ok rp ->
        Alcotest.(check (list result_t)) (name ^ ": results") rs rp
      | Error es, Error ep ->
        Alcotest.(check string)
          (name ^ ": errors")
          (Pipeline_error.to_string es)
          (Pipeline_error.to_string ep)
      | _ -> Alcotest.fail (name ^ ": Ok/Error shape diverged"))
    (List.combine seq par);
  Alcotest.check counters_t "counter totals identical" (delta c0 c1)
    (delta c1 c2)

let test_fuzz_jobs_deterministic () =
  let run jobs =
    match Harness.Fuzz.run ~fuel:20_000 ~jobs ~seed:11 ~cases:48 () with
    | Ok r -> r
    | Error e -> Alcotest.fail (Pipeline_error.to_string e)
  in
  let seq = run 1 in
  let par = run 4 in
  Alcotest.(check bool) "fuzz report identical across jobs" true (seq = par)

(* ------------------------------------------------------------------ *)
(* qcheck: tasks raising arbitrary exceptions behind the guard never
   escape the typed-error barrier and never wedge the pool (the map
   returning at all is the no-deadlock half of the property). *)

exception Chaos of int

let prop_guarded_tasks_never_escape =
  QCheck.Test.make ~count:50 ~name:"pool tasks never escape the barrier"
    QCheck.(list_of_size Gen.(int_range 0 24) (int_range 0 999))
    (fun codes ->
      Stdx.Pool.with_pool ~jobs:3 (fun pool ->
          let outcomes =
            Stdx.Pool.map_list pool
              (fun code ->
                Pipeline_error.guard Execute (fun () ->
                    match code mod 4 with
                    | 0 -> raise (Chaos code)
                    | 1 -> failwith "chaos"
                    | 2 -> invalid_arg "chaos"
                    | _ -> Ok code))
              codes
          in
          List.for_all2
            (fun code outcome ->
              match outcome with
              | Ok v -> code mod 4 = 3 && v = code
              | Error { Pipeline_error.cause = Internal _; stage = Execute; _ }
                ->
                code mod 4 <> 3
              | Error _ -> false)
            codes outcomes))

(* qcheck: scheduling independence.  Whatever the jobs count or the
   segment stride, a segmented analysis under the steal scheduler is
   bit-identical to the sequential un-segmented run — the end-to-end
   form of the pool's determinism contract, with randomized victim
   selection, helping and parking all in play. *)

let prop_steal_segmented_scheduling_independent =
  let ws = Workloads.Registry.all in
  QCheck.Test.make ~count:10
    ~name:"steal scheduler: segmented run == sequential (any jobs/stride)"
    QCheck.(
      triple (int_range 2 4) (int_range 1 400)
        (int_range 0 (List.length ws - 1)))
    (fun (jobs, stride, wi) ->
      let w = [ List.nth ws wi ] in
      let run cfg =
        match Harness.Run.exec cfg w with
        | Ok items -> List.map (fun it -> it.Harness.Run.it_outcome) items
        | Error e -> Alcotest.fail (Pipeline_error.to_string e)
      in
      let seq =
        run (Harness.Run.config ~jobs:1 ~fuel:20_000 ~stream:true specs)
      in
      let par =
        run
          (Harness.Run.config ~scheduler:Stdx.Pool.Steal ~jobs ~fuel:20_000
             ~stream:true ~segment_steps:(`Steps stride) specs)
      in
      seq = par)

let suite =
  Locked_contract.suite "locked"
  @ Steal_contract.suite "steal"
  @ [ Alcotest.test_case "facade: scheduler is first-class" `Quick
        test_facade_scheduler_selection;
      Alcotest.test_case "steal: counters move under uneven load" `Quick
        test_steal_counters_move;
      Alcotest.test_case "Run.exec stream: jobs=4 == sequential" `Slow
        test_streaming_all_deterministic;
      Alcotest.test_case "fuzz: jobs=4 == jobs=1" `Slow
        test_fuzz_jobs_deterministic;
      QCheck_alcotest.to_alcotest prop_guarded_tasks_never_escape;
      QCheck_alcotest.to_alcotest
        prop_steal_segmented_scheduling_independent ]

(* End-to-end code generator tests: compile Mini-C, execute on the VM,
   check results — and differential tests against the reference AST
   interpreter, including QCheck-generated random programs. *)

let run_src ?(fuel = 2_000_000) src =
  let flat = Codegen.Compile.compile_flat src in
  let outcome = Vm.Exec.run ~fuel flat in
  match outcome.status with
  | Vm.Exec.Halted v -> v
  | Out_of_fuel -> Alcotest.fail "out of fuel"
  | Fault f ->
    Alcotest.fail
      (Format.asprintf "VM fault: %a" Pipeline_error.pp_fault f)

let check name expected src =
  Alcotest.(check int) name expected (run_src src)

let test_arith () =
  check "constant" 42 "int main(void) { return 42; }";
  check "precedence" 7 "int main(void) { return 1 + 2 * 3; }";
  check "negative division" (-2) "int main(void) { return -7 / 3; }";
  check "modulo" 2 "int main(void) { return 17 % 5; }";
  check "shifts" 20 "int main(void) { return (5 << 2) >> 0; }";
  check "bitwise" 6 "int main(void) { return (12 & 7) ^ 2; }";
  check "unary" 4 "int main(void) { return -(-4); }";
  check "bnot" (-1) "int main(void) { return ~0; }";
  check "comparison values" 1 "int main(void) { return (3 < 5) == (2 >= 2); }"

let test_locals_and_assign () =
  check "locals" 30
    "int main(void) { int a = 10; int b = 20; return a + b; }";
  check "assign value" 5 "int main(void) { int a; int b; b = (a = 5); return b; }";
  check "in-place increment" 11
    "int main(void) { int i = 10; i = i + 1; return i; }";
  check "in-place decrement" 9
    "int main(void) { int i = 10; i = i - 1; return i; }";
  check "increment used as value" 7
    "int main(void) { int i = 6; int j = (i = i + 1); return j; }"

let test_control_flow () =
  check "if true" 1 "int main(void) { if (2 > 1) return 1; return 0; }";
  check "if else" 2 "int main(void) { if (1 > 2) return 1; else return 2; }";
  check "while" 55
    {|int main(void) { int i = 1; int s = 0;
       while (i <= 10) { s = s + i; i = i + 1; } return s; }|};
  check "for" 45
    {|int main(void) { int i; int s = 0;
       for (i = 0; i < 10; i = i + 1) s = s + i; return s; }|};
  check "break" 5
    {|int main(void) { int i;
       for (i = 0; i < 100; i = i + 1) { if (i == 5) break; } return i; }|};
  check "continue" 20
    {|int main(void) { int i; int s = 0;
       for (i = 0; i < 10; i = i + 1) { if (i % 2) continue; s = s + i; }
       return s; }|};
  check "nested loops" 100
    {|int main(void) { int i; int j; int c = 0;
       for (i = 0; i < 10; i = i + 1)
         for (j = 0; j < 10; j = j + 1) c = c + 1;
       return c; }|}

let test_short_circuit () =
  (* The right operand must not be evaluated when short-circuited:
     observable through a side effect in a helper. *)
  check "and short-circuits" 0
    {|int hit;
      int bump(void) { hit = hit + 1; return 1; }
      int main(void) { int r = (0 && bump()); return hit + r; }|};
  check "or short-circuits" 1
    {|int hit;
      int bump(void) { hit = hit + 1; return 1; }
      int main(void) { int r = (1 || bump()); return hit * 10 + r; }|};
  check "and evaluates both" 12
    {|int hit;
      int bump(void) { hit = hit + 10; return 1; }
      int main(void) { int r = (1 && bump()); return hit + r + 1; }|};
  check "boolean value" 1 "int main(void) { return (1 && 2) || 0; }";
  check "not" 1 "int main(void) { return !0; }"

let test_functions () =
  check "call" 42
    "int f(int x) { return x * 2; } int main(void) { return f(21); }";
  check "four args" 10
    {|int add4(int a, int b, int c, int d) { return a + b + c + d; }
      int main(void) { return add4(1, 2, 3, 4); }|};
  check "recursion" 120
    {|int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }
      int main(void) { return fact(5); }|};
  check "mutual recursion" 1
    {|int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
      int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
      int main(void) { return is_odd(7); }|};
  check "fib" 55
    {|int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
      int main(void) { return fib(10); }|};
  check "void function" 9
    {|int g;
      void set(int v) { g = v; }
      int main(void) { set(9); return g; }|};
  check "fall-through returns zero" 0
    {|int f(void) { int x = 3; x = x + 1; }
      int main(void) { return f(); }|};
  check "call in expression" 13
    {|int three(void) { return 3; }
      int main(void) { return 1 + three() * 4; }|}

let test_arrays () =
  check "global array" 6
    {|int a[3] = {1, 2, 3};
      int main(void) { return a[0] + a[1] + a[2]; }|};
  check "local array" 10
    {|int main(void) { int a[4]; int i;
       for (i = 0; i < 4; i = i + 1) a[i] = i + 1;
       return a[0] + a[1] + a[2] + a[3]; }|};
  check "array parameter by reference" 7
    {|void set(int a[], int i, int v) { a[i] = v; }
      int g[3];
      int main(void) { set(g, 1, 7); return g[1]; }|};
  check "local array as argument" 5
    {|int get(int a[], int i) { return a[i]; }
      int main(void) { int b[2]; b[1] = 5; return get(b, 1); }|};
  check "string global" 208
    {|int s[] = "hi";
      int main(void) { return s[0] + s[1] - s[2] - 1; }|};
  check "computed index" 9
    {|int a[10];
      int main(void) { int i = 2; a[i * 3 + 1] = 9; return a[7]; }|}

let test_floats () =
  check "float arithmetic" 10
    "int main(void) { float x = 2.5; return x * 4.0; }";
  check "int to float promotion" 7
    "int main(void) { float x = 3; return x * 2 + 1.5; }";
  check "float compare" 1
    "int main(void) { float x = 1.5; if (x > 1.0) return 1; return 0; }";
  check "float array" 6
    {|float a[3];
      int main(void) { int i;
       for (i = 0; i < 3; i = i + 1) a[i] = i + 1.0;
       return a[0] + a[1] + a[2]; }|};
  check "float function" 15
    {|float half(float x) { return x / 2.0; }
      int main(void) { return half(31.0); }|};
  check "float global init" 9
    {|float g = 4.5;
      int main(void) { return g * 2.0; }|};
  check "float negation" (-3)
    "int main(void) { float x = 3.5; return -x; }"

let test_switch () =
  check "dense switch" 20
    {|int main(void) { int x = 2; int r = 0;
       switch (x) { case 1: r = 10; break; case 2: r = 20; break;
                    case 3: r = 30; break; default: r = 99; }
       return r; }|};
  check "switch default" 99
    {|int main(void) { int x = 7; int r = 0;
       switch (x) { case 1: r = 10; break; case 2: r = 20; break;
                    default: r = 99; }
       return r; }|};
  check "switch fallthrough" 31
    {|int main(void) { int r = 0;
       switch (1) { case 1: r = r + 1; case 2: r = r + 30; break;
                    case 3: r = 500; }
       return r; }|};
  check "sparse switch" 3
    {|int main(void) { int r;
       switch (1000) { case 1: r = 1; break; case 500: r = 2; break;
                       case 1000: r = 3; break; default: r = 4; }
       return r; }|};
  check "switch no default no match" 8
    {|int main(void) { int r = 8;
       switch (42) { case 1: r = 0; } return r; }|};
  check "negative labels" 5
    {|int main(void) { int r = 0;
       switch (0 - 2) { case -2: r = 5; break; case -1: r = 6; }
       return r; }|}

let test_scoping () =
  check "shadowing" 12
    {|int main(void) { int x = 2;
       { int x = 10; { int y = x; x = y + 2; } return x + 0; }
     }|};
  check "block-local lifetime" 5
    {|int main(void) { int x = 5;
       if (x > 0) { int x = 100; x = x + 1; }
       return x; }|}

let test_deep_expressions () =
  (* More than eight live temporaries forces expression spills. *)
  check "spilled temps" 55
    {|int main(void) {
       return 1 + (2 + (3 + (4 + (5 + (6 + (7 + (8 + (9 + 10)))))))); }|};
  check "wide sum" 15
    {|int one(void) { return 1; }
      int main(void) {
       return ((((one() + one()) + (one() + one()))
              + ((one() + one()) + (one() + one())))
              + (((one() + one()) + (one() + one()))
              + ((one() + one()) + one()))); }|}

let test_globals () =
  check "global scalar init" 17 "int g = 17; int main(void) { return g; }";
  check "negative init" (-4)
    "int g = -4; int main(void) { return g; }";
  check "zero-initialized" 0 "int g; int main(void) { return g; }";
  check "global update across calls" 3
    {|int counter;
      void tick(void) { counter = counter + 1; }
      int main(void) { tick(); tick(); tick(); return counter; }|}

let run_src_guarded ?(fuel = 2_000_000) src =
  let flat =
    Codegen.Compile.compile_flat
      ~options:{ Codegen.Compile.if_convert = true } src
  in
  match (Vm.Exec.run ~fuel flat).status with
  | Vm.Exec.Halted v -> v
  | _ -> Alcotest.fail "guarded run did not halt"

let test_if_conversion () =
  let sources =
    [ {|int main(void) { int i; int m = 0;
         for (i = 0; i < 100; i = i + 1) {
           int v = (i * 37) & 63;
           if (v > m) m = v;
         }
         return m; }|};
      {|int main(void) { int i; int odd = 0;
         for (i = 0; i < 50; i = i + 1) {
           if (i & 1) odd = odd + 1; else odd = odd - 3;
         }
         return odd; }|};
      (* Arms reading the assigned variable must see the old value. *)
      {|int main(void) { int x = 10;
         if (x > 5) x = x * 2; else x = x + 100;
         return x; }|} ]
  in
  List.iter
    (fun src ->
      Alcotest.(check int) "guarded = plain" (run_src src)
        (run_src_guarded src))
    sources;
  (* The conversion must actually remove branches. *)
  let src = List.hd sources in
  let count_branches options =
    let flat = Codegen.Compile.compile_flat ?options src in
    Array.fold_left
      (fun acc i ->
        if Risc.Insn.kind i = Risc.Insn.Cond_branch then acc + 1 else acc)
      0 flat.code
  in
  Alcotest.(check bool) "fewer branches when guarded" true
    (count_branches (Some { Codegen.Compile.if_convert = true })
    < count_branches None)

let test_if_conversion_skips_unsafe () =
  (* Division can fault, calls have effects, floats and arrays are out
     of scope: these must stay branchy and still compute correctly. *)
  let src =
    {|int g[4];
      int bump(void) { g[0] = g[0] + 1; return 1; }
      int main(void) { int x = 0; int d = 0;
        if (d != 0) x = 10 / d;
        if (x == 0) x = bump();
        if (g[0] > 0) g[1] = 5;
        return x * 100 + g[0] * 10 + g[1]; }|}
  in
  Alcotest.(check int) "unsafe patterns preserved" (run_src src)
    (run_src_guarded src)

let test_if_conversion_random =
  QCheck.Test.make ~name:"guarded compilation preserves semantics"
    ~count:60
    (QCheck.make ~print:(fun s -> s) Gen_minic.gen_program)
    (fun src ->
      let ast = Minic.Parser.parse src in
      ignore (Minic.Sema.check ast);
      let interp = Minic.Interp.run ast in
      run_src_guarded src = interp)

let test_codegen_errors () =
  let bad name src =
    match Codegen.Compile.compile src with
    | exception Codegen.Compile.Error _ -> ()
    | _ -> Alcotest.fail ("codegen should reject: " ^ name)
  in
  bad "five int parameters"
    {|int f(int a, int b, int c, int d, int e) { return a+b+c+d+e; }
      int main(void) { return f(1,2,3,4,5); }|}

(* ------------------------------------------------------------------ *)
(* Differential testing against the reference interpreter. *)

let differential name src =
  let ast = Minic.Parser.parse src in
  ignore (Minic.Sema.check ast);
  let interp = Minic.Interp.run ast in
  let compiled = run_src src in
  Alcotest.(check int) name interp compiled

let test_differential_fixed () =
  differential "sort"
    {|int a[8] = {5, 3, 8, 1, 9, 2, 7, 4};
      int main(void) { int i; int j;
        for (i = 0; i < 8; i = i + 1)
          for (j = 0; j < 7; j = j + 1)
            if (a[j] > a[j + 1]) { int t = a[j]; a[j] = a[j+1]; a[j+1] = t; }
        return a[0] * 10000 + a[3] * 100 + a[7]; }|};
  differential "gcd"
    {|int gcd(int a, int b) { if (b == 0) return a; return gcd(b, a % b); }
      int main(void) { return gcd(1071, 462); }|};
  differential "collatz"
    {|int main(void) { int n = 27; int steps = 0;
        while (n != 1) { if (n % 2) n = 3 * n + 1; else n = n / 2;
                         steps = steps + 1; }
        return steps; }|};
  differential "float mix"
    {|float scale;
      int main(void) { int i; float acc = 0.0; scale = 0.5;
        for (i = 1; i <= 10; i = i + 1) acc = acc + i * scale;
        return acc * 4.0; }|}

(* Random programs: shared generator in Gen_minic. *)
let gen_program = Gen_minic.gen_program

let test_differential_random =
  QCheck.Test.make ~name:"compiled = interpreted on random programs"
    ~count:120
    (QCheck.make ~print:(fun s -> s) gen_program)
    (fun src ->
      let ast = Minic.Parser.parse src in
      ignore (Minic.Sema.check ast);
      let interp = Minic.Interp.run ast in
      let flat = Codegen.Compile.compile_flat src in
      match (Vm.Exec.run ~fuel:2_000_000 flat).status with
      | Vm.Exec.Halted v -> v = interp
      | _ -> false)

let suite =
  [ Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "locals/assignment" `Quick test_locals_and_assign;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "short-circuit" `Quick test_short_circuit;
    Alcotest.test_case "functions" `Quick test_functions;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "floats" `Quick test_floats;
    Alcotest.test_case "switch" `Quick test_switch;
    Alcotest.test_case "scoping" `Quick test_scoping;
    Alcotest.test_case "deep expressions" `Quick test_deep_expressions;
    Alcotest.test_case "globals" `Quick test_globals;
    Alcotest.test_case "codegen limits" `Quick test_codegen_errors;
    Alcotest.test_case "if-conversion" `Quick test_if_conversion;
    Alcotest.test_case "if-conversion safety" `Quick
      test_if_conversion_skips_unsafe;
    QCheck_alcotest.to_alcotest test_if_conversion_random;
    Alcotest.test_case "differential fixed" `Quick test_differential_fixed;
    QCheck_alcotest.to_alcotest test_differential_random ]

(* The compositional machine lattice: golden alias <-> spec mappings
   for the seven paper machines, canonical printing, parser error
   typing, qcheck round-trips over random lattice points, the partial
   order, and hand-scheduled goldens for the fetch-rate and
   value-prediction constraints. *)

module M = Ilp.Machine
module K = Risc.Insn

let machine = Alcotest.testable (fun ppf m -> Format.pp_print_string ppf
    (M.describe m)) ( = )

let ok_machine = function
  | Ok m -> m
  | Error e -> Alcotest.failf "unexpected parse error: %s"
      (Pipeline_error.to_string e)

(* --- the seven paper machines are named lattice points --- *)

let paper_goldens =
  [ (M.base, "base", "BASE");
    (M.cd, "cd", "CD");
    (M.cd_mf, "cd-mf", "CD-MF");
    (M.sp, "sp", "SP");
    (M.sp_cd, "sp-cd", "SP-CD");
    (M.sp_cd_mf, "sp-cd-mf", "SP-CD-MF");
    (M.oracle, "oracle", "ORACLE") ]

let test_paper_specs () =
  List.iter
    (fun (m, spec, name) ->
      Alcotest.(check string) (spec ^ " prints") spec (M.to_spec m);
      Alcotest.(check string) (spec ^ " display name") name m.M.name;
      Alcotest.check machine (spec ^ " parses back") m
        (ok_machine (M.of_spec spec));
      (* case-insensitive: the display name is itself a valid spec *)
      Alcotest.check machine (name ^ " parses") m
        (ok_machine (M.of_spec name)))
    paper_goldens;
  Alcotest.(check (list string)) "paper_names"
    [ "BASE"; "CD"; "CD-MF"; "SP"; "SP-CD"; "SP-CD-MF"; "ORACLE" ]
    M.paper_names

(* --- canonical printing --- *)

let test_canonical_printing () =
  (* items apply left to right; printing uses one fixed order *)
  let m = ok_machine (M.of_spec "sp-cd,fetch=2,window=256,vp") in
  Alcotest.(check string) "canonical order" "sp-cd,vp,window=256,fetch=2"
    (M.to_spec m);
  Alcotest.(check string) "name is the canonical spec"
    "sp-cd,vp,window=256,fetch=2" m.M.name;
  (* (control, flows) pairs collapse back to alias tokens *)
  Alcotest.check machine "cd,mf = cd-mf" M.cd_mf
    (ok_machine (M.of_spec "cd,mf"));
  Alcotest.check machine "sp-cd,flows=mf = sp-cd-mf" M.sp_cd_mf
    (ok_machine (M.of_spec "sp-cd,flows=mf"));
  (* a later item overrides an earlier one per dimension *)
  Alcotest.check machine "override window" M.sp
    (ok_machine (M.of_spec "sp,window=64,window=inf"));
  (* the oracle serializes no branches: a flows bound is dead *)
  Alcotest.check machine "oracle,flows=2 = oracle" M.oracle
    (ok_machine (M.of_spec "oracle,flows=2"));
  (* explicit defaults are identities *)
  Alcotest.check machine "base,lat=unit = base" M.base
    (ok_machine (M.of_spec "base,lat=unit"));
  Alcotest.(check string) "sp,mf prints sp,mf" "sp,mf"
    (M.to_spec (ok_machine (M.of_spec "sp,mf")))

let test_combinators_match_parser () =
  let built =
    M.sp_cd_mf
    |> M.with_window 256
    |> M.with_fetch (Some 4)
    |> M.with_value_predict true
  in
  Alcotest.check machine "combinators = parsed spec" built
    (ok_machine (M.of_spec "sp-cd-mf,vp,window=256,fetch=4"));
  Alcotest.check machine "with_latency Realistic"
    (M.with_latency M.Realistic M.oracle)
    (ok_machine (M.of_spec "oracle,lat=real"))

(* --- parser errors are typed, exit code 2, with hints --- *)

let test_errors () =
  let err spec =
    match M.of_spec spec with
    | Ok m -> Alcotest.failf "%S parsed to %s" spec (M.describe m)
    | Error e -> e
  in
  (* bare typo'd name: the familiar unknown-machine error, with hint *)
  let e = err "spcd" in
  (match e.Pipeline_error.cause with
  | Pipeline_error.Unknown_machine { hint = Some "sp-cd"; _ } -> ()
  | _ -> Alcotest.failf "spcd: wrong cause: %s" (Pipeline_error.to_string e));
  Alcotest.(check int) "unknown exit code" 2 (Pipeline_error.exit_code e);
  (* malformed composed specs are Invalid_machine_spec *)
  List.iter
    (fun spec ->
      let e = err spec in
      (match e.Pipeline_error.cause with
      | Pipeline_error.Invalid_machine_spec _ -> ()
      | _ ->
        Alcotest.failf "%S: wrong cause: %s" spec
          (Pipeline_error.to_string e));
      Alcotest.(check int) (spec ^ " exit code") 2
        (Pipeline_error.exit_code e))
    [ "sp-cd,bogus"; "sp-cd,window=0"; "sp-cd,window=abc";
      "sp-cd,lat=weird"; "sp-cd,widnow=64"; "sp-cd,,vp" ];
  (* item-level hints survive into the message *)
  let contains ~sub s =
    let n = String.length sub and len = String.length s in
    let rec go i = i + n <= len && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let msg = Pipeline_error.to_string (err "sp-cd,widnow=64") in
  if not (contains ~sub:"window" msg) then
    Alcotest.failf "no hint in %S" msg

(* --- round-trip: print then parse is the identity --- *)

let test_roundtrip_random =
  QCheck.Test.make ~name:"of_spec (to_spec m) = m on random lattice points"
    ~count:300 QCheck.int
    (fun bits ->
      let m = M.random bits in
      match M.of_spec (M.to_spec m) with
      | Ok m' -> m = m'
      | Error _ -> false)

(* --- the partial order --- *)

let test_leq_goldens () =
  let check name b = Alcotest.(check bool) name true b in
  (* BASE is bottom and ORACLE is top of the paper chain *)
  List.iter
    (fun m ->
      check ("base <= " ^ m.M.name) (M.leq M.base m);
      check (m.M.name ^ " <= oracle") (M.leq m M.oracle))
    M.all_paper;
  check "cd <= sp-cd" (M.leq M.cd M.sp_cd);
  check "sp <= sp-cd" (M.leq M.sp M.sp_cd);
  Alcotest.(check bool) "cd || sp incomparable" false
    (M.leq M.cd M.sp || M.leq M.sp M.cd);
  (* adding a constraint moves down the lattice *)
  check "windowed <= unwindowed" (M.leq (M.with_window 256 M.sp) M.sp);
  Alcotest.(check bool) "unwindowed </= windowed" false
    (M.leq M.sp (M.with_window 256 M.sp));
  check "fetch-limited <= unlimited"
    (M.leq (M.with_fetch (Some 4) M.sp_cd_mf) M.sp_cd_mf);
  check "no-vp <= vp"
    (M.leq M.sp_cd_mf (M.with_value_predict true M.sp_cd_mf))

let test_leq_order_random =
  QCheck.Test.make ~name:"leq is reflexive and antisymmetric" ~count:300
    QCheck.(pair int int)
    (fun (a, b) ->
      let ma = M.random a and mb = M.random b in
      M.leq ma ma
      && M.leq mb mb
      && ((not (M.leq ma mb && M.leq mb ma)) || ma = mb))

(* --- fetch-rate constraint: hand-computed schedules --- *)

let scripted = Test_analyze.scripted_predictor []

let fetch_cycles ?value_table m info trace =
  let cfg = Ilp.Analyze.config ?value_table ~mem_words:64 m scripted in
  (Ilp.Analyze.run cfg info trace).Ilp.Analyze.cycles

let test_fetch_schedule () =
  (* 8 independent instructions: an f-wide fetch issues instruction i
     no earlier than cycle i/f + 1, so the span is ceil(8/f). *)
  let n = 8 in
  (* keep them independent: distinct destinations, no uses *)
  let info =
    Test_analyze.mk_info
      ~defs:(Array.init n (fun i -> [| 1 + i |]))
      (Array.make n K.Plain)
  in
  let trace =
    Test_analyze.mk_trace (List.init n (fun pc -> (pc, -1)))
  in
  let cyc f = fetch_cycles (M.with_fetch f M.oracle) info trace in
  Alcotest.(check int) "unlimited" 1 (cyc None);
  Alcotest.(check int) "fetch=1" 8 (cyc (Some 1));
  Alcotest.(check int) "fetch=2" 4 (cyc (Some 2));
  Alcotest.(check int) "fetch=3" 3 (cyc (Some 3));
  Alcotest.(check int) "fetch=8" 1 (cyc (Some 8));
  (* fetch composes with data dependence: a serial chain is unmoved *)
  let chain =
    Test_analyze.mk_info
      ~uses:[| [||]; [| 1 |]; [| 2 |] |]
      ~defs:[| [| 1 |]; [| 2 |]; [| 3 |] |]
      [| K.Plain; K.Plain; K.Plain |]
  in
  let ctrace = Test_analyze.mk_trace [ (0, -1); (1, -1); (2, -1) ] in
  Alcotest.(check int) "chain unmoved by fetch=4" 3
    (fetch_cycles (M.with_fetch (Some 4) M.oracle) chain ctrace)

(* --- value prediction: breaking the serial chain --- *)

let test_value_prediction_schedule () =
  let chain =
    Test_analyze.mk_info
      ~uses:[| [||]; [| 1 |]; [| 2 |] |]
      ~defs:[| [| 1 |]; [| 2 |]; [| 3 |] |]
      [| K.Plain; K.Plain; K.Plain |]
  in
  let trace () = Test_analyze.mk_trace [ (0, -1); (1, -1); (2, -1) ] in
  let vp = M.with_value_predict true M.oracle in
  (* every producer predictable: the chain collapses to one cycle *)
  Alcotest.(check int) "all predictable" 1
    (fetch_cycles ~value_table:[| true; true; true |] vp chain (trace ()));
  (* only the first link broken: 0 -> free, 1 -> cycle 1, 2 -> cycle 2 *)
  Alcotest.(check int) "first predictable" 2
    (fetch_cycles ~value_table:[| true; false; false |] vp chain (trace ()));
  (* vp machine without training degrades to the plain schedule *)
  Alcotest.(check int) "no table" 3 (fetch_cycles vp chain (trace ()));
  Alcotest.(check int) "undersized table" 3
    (fetch_cycles ~value_table:[| true |] vp chain (trace ()));
  Alcotest.(check int) "all-false table" 3
    (fetch_cycles ~value_table:[| false; false; false |] vp chain
       (trace ()));
  (* a table never helps a machine without the vp constraint *)
  Alcotest.(check int) "table ignored without vp" 3
    (fetch_cycles ~value_table:[| true; true; true |] M.oracle chain
       (trace ()))

(* --- end-to-end: a parsed spec is the machine it names --- *)

let small_source =
  {|int main(void) { int i; int s = 0; int c = 0;
     for (i = 0; i < 120; i = i + 1) {
       c = 7;
       if (i % 4 == 0) s = s + c;
       else s = s + 1;
     }
     return s; }|}

let test_spec_equals_alias_end_to_end () =
  let p =
    Harness.prepare_source ~train_values:true ~name:"lattice-e2e"
      small_source
  in
  let results ms = Harness.Run.on_prepared p (List.map Harness.spec ms) in
  (match
     results [ M.sp_cd; ok_machine (M.of_spec "sp-cd") ]
   with
  | [ a; b ] ->
    if a <> b then Alcotest.fail "parsed sp-cd diverged from the alias"
  | _ -> assert false);
  (* the vp corner of the lattice is never slower than its base point *)
  match
    results [ M.sp_cd; ok_machine (M.of_spec "sp-cd,vp") ]
  with
  | [ plain; vp ] ->
    if vp.Ilp.Analyze.cycles > plain.Ilp.Analyze.cycles then
      Alcotest.failf "vp slowed sp-cd: %d > %d" vp.cycles plain.cycles;
    Alcotest.(check int) "same counted" plain.counted vp.counted
  | _ -> assert false

let suite =
  [ Alcotest.test_case "paper machine specs" `Quick test_paper_specs;
    Alcotest.test_case "canonical printing" `Quick test_canonical_printing;
    Alcotest.test_case "combinators = parser" `Quick
      test_combinators_match_parser;
    Alcotest.test_case "typed parse errors" `Quick test_errors;
    QCheck_alcotest.to_alcotest test_roundtrip_random;
    Alcotest.test_case "lattice order goldens" `Quick test_leq_goldens;
    QCheck_alcotest.to_alcotest test_leq_order_random;
    Alcotest.test_case "fetch-rate schedule" `Quick test_fetch_schedule;
    Alcotest.test_case "value-prediction schedule" `Quick
      test_value_prediction_schedule;
    Alcotest.test_case "spec = alias end to end" `Quick
      test_spec_equals_alias_end_to_end ]

(* Dataflow framework tests: bitsets, reaching definitions, liveness,
   and the may/must uninitialized-register analysis. *)

module I = Risc.Insn
module P = Asm.Program
module R = Risc.Reg
module D = Cfg.Dataflow

let flat_of items =
  P.resolve
    { P.procs = [ { P.name = "main"; body = items } ];
      data = [];
      entry = "main" }

let view_of flat =
  let g = Cfg.Graph.build flat in
  Cfg.View.make g 0

let test_bits () =
  let b = D.Bits.create 100 in
  Alcotest.(check bool) "fresh empty" false (D.Bits.mem b 70);
  D.Bits.set b 3;
  D.Bits.set b 70;
  Alcotest.(check bool) "set low" true (D.Bits.mem b 3);
  Alcotest.(check bool) "set high" true (D.Bits.mem b 70);
  Alcotest.(check (list int)) "to_list sorted" [ 3; 70 ] (D.Bits.to_list b);
  D.Bits.unset b 3;
  Alcotest.(check bool) "unset" false (D.Bits.mem b 3);
  let c = D.Bits.create 100 in
  D.Bits.set c 5;
  Alcotest.(check bool) "union changes" true
    (D.Bits.union_into ~src:c ~dst:b);
  Alcotest.(check bool) "union idempotent" false
    (D.Bits.union_into ~src:c ~dst:b);
  Alcotest.(check (list int)) "union result" [ 5; 70 ] (D.Bits.to_list b);
  let d = D.Bits.copy b in
  D.Bits.diff_into ~src:c ~dst:d;
  Alcotest.(check (list int)) "diff" [ 70 ] (D.Bits.to_list d);
  D.Bits.inter_into ~src:c ~dst:b;
  Alcotest.(check (list int)) "inter" [ 5 ] (D.Bits.to_list b);
  let f = D.Bits.full 67 in
  Alcotest.(check int) "full size" 67 (List.length (D.Bits.to_list f));
  Alcotest.(check bool) "equal reflexive" true
    (D.Bits.equal f (D.Bits.copy f))

(* r9 defined in both arms of a diamond, read at the join:
     pc0 beq r8, 0, else | pc1 li r9, 1 | pc2 j join
     pc3 else: li r9, 2  | pc4 join: add r10, r9, r9 | pc5 halt *)
let diamond () =
  flat_of
    [ P.Ins (I.Li (8, 0));
      P.Ins (I.Bi (I.Eq, 8, 0, "else"));
      P.Ins (I.Li (9, 1));
      P.Ins (I.J "join");
      P.Label "else";
      P.Ins (I.Li (9, 2));
      P.Label "join";
      P.Ins (I.Alu (I.Add, 10, 9, 9));
      P.Ins I.Halt ]

let test_reaching_diamond () =
  let flat = diamond () in
  let v = view_of flat in
  let rd = D.Reaching.compute v in
  (* Both arm definitions reach the read at the join. *)
  Alcotest.(check (list int)) "defs of r9 at join" [ 2; 4 ]
    (D.Reaching.at rd ~pc:5 ~reg:9);
  (* Inside the then-arm only the local definition reaches. *)
  Alcotest.(check (list int)) "def of r9 after then" [ 2 ]
    (D.Reaching.at rd ~pc:3 ~reg:9);
  (* Block-entry query at the join agrees with the per-pc one. *)
  let join_local =
    match Cfg.View.local v v.graph.block_of.(5) with
    | Some l -> l
    | None -> Alcotest.fail "join block not in proc"
  in
  Alcotest.(check (list int)) "block-entry query" [ 2; 4 ]
    (D.Reaching.at_block_entry rd ~l:join_local ~reg:9)

let test_liveness_diamond () =
  let flat = diamond () in
  let v = view_of flat in
  let live = D.Liveness.compute v in
  (* r9 is read at the join, so it is live after both arm writes. *)
  Alcotest.(check bool) "r9 live after then-arm write" true
    (D.Bits.mem (D.Liveness.live_after live ~pc:2) 9);
  Alcotest.(check bool) "r9 live after else-arm write" true
    (D.Bits.mem (D.Liveness.live_after live ~pc:4) 9);
  (* r10 is never read again: dead right after its write. *)
  Alcotest.(check bool) "r10 dead after join write" false
    (D.Bits.mem (D.Liveness.live_after live ~pc:5) 10);
  (* A halt uses the return value register. *)
  Alcotest.(check bool) "rv used by halt" true
    (List.mem R.rv (D.Liveness.use_regs I.Halt))

let test_uninit () =
  (* r9 written only on one path: may-uninit but not must-uninit at the
     join read.  r11 never written: must-uninit everywhere. *)
  let flat =
    flat_of
      [ P.Ins (I.Li (8, 1));
        P.Ins (I.Bi (I.Eq, 8, 0, "skip"));
        P.Ins (I.Li (9, 1));
        P.Label "skip";
        P.Ins (I.Alu (I.Add, 10, 9, 9));
        P.Ins I.Halt ]
  in
  let v = view_of flat in
  let u = D.Uninit.compute v ~assumed:[ R.sp ] in
  let join_local =
    match Cfg.View.local v v.graph.block_of.(3) with
    | Some l -> l
    | None -> Alcotest.fail "join block not in proc"
  in
  let seen = ref false in
  D.Uninit.iter_block u ~l:join_local (fun pc _insn ~may ~must ->
      if pc = 3 then begin
        seen := true;
        Alcotest.(check bool) "r9 may be uninit" true (D.Bits.mem may 9);
        Alcotest.(check bool) "r9 not must-uninit" false (D.Bits.mem must 9);
        Alcotest.(check bool) "r11 must-uninit" true (D.Bits.mem must 11);
        Alcotest.(check bool) "r8 initialized" false (D.Bits.mem may 8);
        Alcotest.(check bool) "assumed sp initialized" false
          (D.Bits.mem may R.sp);
        Alcotest.(check bool) "r0 always initialized" false
          (D.Bits.mem may R.zero)
      end);
  Alcotest.(check bool) "join read visited" true !seen

let test_call_clobbers () =
  (* A call defines every caller-saved register and preserves the
     callee-saved banks. *)
  let defs = D.def_regs (I.Jal 0) in
  Alcotest.(check bool) "call defines rv" true (List.mem R.rv defs);
  Alcotest.(check bool) "call defines tmps" true (List.mem (R.tmp 0) defs);
  Alcotest.(check bool) "call defines ra" true (List.mem R.ra defs);
  Alcotest.(check bool) "call preserves saved" false
    (List.mem (R.sav 0) defs);
  Alcotest.(check bool) "call preserves sp" false (List.mem R.sp defs);
  let uses = D.Liveness.use_regs (I.Jal 0) in
  Alcotest.(check bool) "call reads args" true (List.mem (R.arg 0) uses);
  Alcotest.(check bool) "call reads sp" true (List.mem R.sp uses);
  let ret_uses = D.Liveness.use_regs (I.Jr R.ra) in
  Alcotest.(check bool) "ret reads saved bank" true
    (List.mem (R.sav 0) ret_uses)

let test_solver_backward_inter () =
  (* Direct solver exercise: a two-node line, backward must-analysis.
     gen at the exit node only; the interior node must see it through
     the meet. *)
  let width = 4 in
  let gen = [| D.Bits.create width; D.Bits.create width |] in
  let kill = [| D.Bits.create width; D.Bits.create width |] in
  let boundary = [| D.Bits.create width; D.Bits.create width |] in
  D.Bits.set gen.(1) 2;
  let succs = [| [| 1 |]; [||] |] and preds = [| [||]; [| 0 |] |] in
  let before, _after =
    D.solve ~direction:D.Backward ~meet:D.Inter ~n:2 ~width ~succs ~preds
      ~gen ~kill ~boundary ()
  in
  Alcotest.(check bool) "fact flows backward" true (D.Bits.mem before.(0) 2)

let suite =
  [ Alcotest.test_case "bitset operations" `Quick test_bits;
    Alcotest.test_case "reaching defs diamond" `Quick test_reaching_diamond;
    Alcotest.test_case "liveness diamond" `Quick test_liveness_diamond;
    Alcotest.test_case "uninit may/must" `Quick test_uninit;
    Alcotest.test_case "call conventions" `Quick test_call_clobbers;
    Alcotest.test_case "backward must solver" `Quick
      test_solver_backward_inter ]

(* ilp-limits: command-line driver for the reproduction.

   Subcommands:
     list        the benchmark suite (paper Table 1)
     machines    machine aliases, the spec grammar, and a spec fuzzer
     run         parallelism limits for chosen workloads and machines
     stats       branch statistics (Table 2) and misprediction distances
     check       static diagnostic passes (and dynamic cross-validation)
     estimate    static parallelism bounds, no execution
     disasm      compiled assembly of a workload, flag-annotated
     blocks      basic blocks, control dependences and loops
     trace       the head of a dynamic trace
     inject      run one seeded fault through the pipeline
     fuzz        bulk seeded fault injection (pipeline invariant check)
     serve       long-running analysis daemon (framed JSON over a socket)
     client      one request against a running serve daemon

   Every command returns (unit, Pipeline_error.t) result; the error's
   cause class selects the process exit code (see Pipeline_error.exit_code):
   1 generic/internal, 2 unknown name or bad request, 3 compile error,
   4 VM fault, 5 resource budget, 6 deadline, 7 overloaded,
   8 rejected by the admission estimate. *)

let ( let* ) = Result.bind

let err ?workload stage cause = Error (Pipeline_error.v ?workload stage cause)

let workloads_of_names names =
  match names with
  | [] -> Ok Workloads.Registry.all
  | _ ->
    let rec all acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest ->
        let* w = Workloads.Registry.find_result n in
        all (w :: acc) rest
    in
    all [] names

let fault_of_name name =
  match Fault.Injector.kind_of_string name with
  | Some k -> Ok k
  | None ->
    err Lookup
      (Unknown_fault
         { name;
           hint = Pipeline_error.suggest name Fault.Injector.kind_names })

(* The parallelism flags (--jobs / --segment-steps / --scheduler) are
   declared and validated once in Cli.Parallel, shared with serve and
   the bench; every malformed value is a typed Invalid_request, exit
   code 2. *)
let segmenting_of_flag = Cli.Parallel.segmenting_of_flag

(* ------------------------------------------------------------------ *)

let cmd_list () =
  let rows =
    List.map
      (fun (w : Workloads.Registry.t) ->
        [ w.name; w.lang; (if w.numeric then "numeric" else "non-numeric");
          w.description ])
      Workloads.Registry.all
  in
  print_string
    (Report.Table.render ~title:"Benchmark programs (Table 1)"
       ~header:[ "Program"; "Language"; "Class"; "Description" ]
       ~align:[ Left; Left; Left; Left ] rows);
  Ok ()

(* The machine lattice: aliases, grammar, and a parser fuzzer.  The
   fuzzer asserts the spec layer's own invariant — every string yields
   a machine or a typed error, and canonical specs round-trip — over
   deterministically seeded lattice points and mutations of them. *)

let cmd_machines_fuzz ~seed ~cases =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  for i = 0 to cases - 1 do
    let bits = Fault.Injector.Rng.derive ~seed ~index:i in
    (* A random lattice point's canonical spec must parse back to the
       same machine. *)
    (try
       let m = Ilp.Machine.random bits in
       let spec = Ilp.Machine.to_spec m in
       match Ilp.Machine.of_spec spec with
       | Ok m' when m' = m -> ()
       | Ok m' ->
         fail "case %d: %S reparsed as %S" i spec (Ilp.Machine.to_spec m')
       | Error e ->
         fail "case %d: canonical spec %S rejected: %s" i spec
           (Pipeline_error.to_string e)
     with e ->
       fail "case %d: ESCAPED on canonical spec: %s" i
         (Printexc.to_string e));
    (* A deterministic mutation of it must yield a machine or a typed
       error — never an exception. *)
    let spec = Ilp.Machine.to_spec (Ilp.Machine.random bits) in
    let mbits = Fault.Injector.Rng.derive ~seed:bits ~index:1 in
    let mutated =
      match mbits land 3 with
      | 0 -> spec ^ ",bogus"
      | 1 -> String.map (fun c -> if c = '=' then '%' else c) spec
      | 2 -> "zz" ^ spec
      | _ -> String.sub spec 0 ((mbits lsr 2) mod String.length spec)
    in
    match Ilp.Machine.of_spec mutated with
    | Ok _ | Error _ -> ()
    | exception e ->
      fail "case %d: ESCAPED on mutated spec %S: %s" i mutated
        (Printexc.to_string e)
  done;
  let failures = List.rev !failures in
  Format.printf
    "machine-spec fuzz: %d cases (seed %d): %d round-trips, %d mutations, \
     %d failures@."
    cases seed cases cases (List.length failures);
  List.iter (fun f -> Format.printf "  %s@." f) failures;
  if failures <> [] then
    err Report
      (Failed
         (Printf.sprintf "%d machine-spec fuzz failures"
            (List.length failures)))
  else Ok ()

let cmd_machines fuzz seed =
  match fuzz with
  | Some cases -> cmd_machines_fuzz ~seed ~cases
  | None ->
    let rows =
      List.map
        (fun (m : Ilp.Machine.t) ->
          [ m.name; Ilp.Machine.to_spec m; Ilp.Machine.describe m ])
        Ilp.Machine.all_paper
    in
    print_string
      (Report.Table.render ~title:"Named machines (paper Table 3 order)"
         ~header:[ "Machine"; "Spec"; "Constraints" ]
         ~align:[ Left; Left; Left ] rows);
    print_newline ();
    print_endline Ilp.Machine.grammar;
    Ok ()

(* A truncated result's cell gets a star; the legend under the table
   says where and why each starred execution stopped. *)
let truncation_note (r : Ilp.Analyze.result) =
  match r.completeness with
  | Pipeline_error.Complete -> None
  | Pipeline_error.Truncated f ->
    Some (Format.asprintf "%a" Pipeline_error.pp_fault f)

(* ------------------------------------------------------------------ *)
(* Observability surfaces: --trace-out FILE (JSON-lines spans +
   metrics), --metrics (human tree on stdout), --prom-out FILE
   (Prometheus text).  Any of them enables the context; none keeps the
   pipeline on the zero-cost disabled path. *)

let write_file path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc s)

let obs_ctx trace_out metrics prom_out =
  if trace_out <> None || metrics || prom_out <> None then Obs.Ctx.create ()
  else Obs.Ctx.disabled

let obs_report ~trace_out ~metrics ~prom_out obs =
  if Obs.Ctx.enabled obs then begin
    let spans = Obs.Ctx.spans obs in
    let snap = Obs.Ctx.snapshot obs in
    let render f =
      let buf = Buffer.create 4096 in
      f buf;
      Buffer.contents buf
    in
    Option.iter
      (fun path ->
        write_file path
          (render (fun b -> Obs.Export.jsonl b ~spans ~metrics:snap)))
      trace_out;
    if metrics then
      print_string (render (fun b -> Obs.Export.tree b ~metrics:snap spans));
    Option.iter
      (fun path ->
        write_file path (render (fun b -> Obs.Export.prometheus b snap)))
      prom_out
  end

let cmd_run names machine_names no_inline no_unroll fuel stream step_budget
    mem_words deadline_ms jobs segment_steps scheduler trace_out metrics
    prom_out =
  let* ws = workloads_of_names names in
  let* machines = Ilp.Machine.of_specs machine_names in
  let* segment_steps = segmenting_of_flag segment_steps in
  let* scheduler = Cli.Parallel.scheduler_of_flag scheduler in
  let header =
    "Program"
    :: List.map (fun (m : Ilp.Machine.t) -> m.name) machines
  in
  let specs =
    List.map
      (fun m ->
        Harness.spec ~inline:(not no_inline) ~unroll:(not no_unroll)
          ?step_budget m)
      machines
  in
  let jobs = Cli.Parallel.resolve_jobs jobs in
  let obs = obs_ctx trace_out metrics prom_out in
  (* Every path fans all machines out over a single trace scan.
     --stream additionally never materializes the trace, so the budget
     can exceed memory; with more than one worker domain, whole
     workloads also fan out over a pool (always streaming — each domain
     holds O(program) state), merged back in workload order so the
     table is identical for every --jobs value. *)
  let stream = stream || (jobs > 1 && List.length ws > 1) in
  let cfg =
    Harness.Run.config ~jobs ~scheduler ?fuel ?step_budget ?mem_words
      ?deadline_ms ~stream ~obs ~segment_steps specs
  in
  let* items = Harness.Run.exec cfg ws in
  let* per_workload =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | it :: rest ->
        let* results = it.Harness.Run.it_outcome in
        go ((it.Harness.Run.it_workload, results) :: acc) rest
    in
    go [] items
  in
  let notes = ref [] in
  let rows =
    List.map
      (fun ((w : Workloads.Registry.t), results) ->
        (match results with
        | r :: _ -> (
          match truncation_note r with
          | Some note -> notes := (w.name, note) :: !notes
          | None -> ())
        | [] -> ());
        w.name
        :: List.map
             (fun (r : Ilp.Analyze.result) ->
               Report.Table.fnum r.parallelism
               ^ (match r.completeness with
                 | Pipeline_error.Complete -> ""
                 | Pipeline_error.Truncated _ -> "*"))
             results)
      per_workload
  in
  print_string
    (Report.Table.render ~title:"Parallelism limits"
       ~header
       ~align:(Left :: List.map (fun _ -> Report.Table.Right) machines)
       rows);
  List.iter
    (fun (name, note) -> Printf.printf "  * %s: truncated (%s)\n" name note)
    (List.rev !notes);
  obs_report ~trace_out ~metrics ~prom_out obs;
  Ok ()

let cmd_stats names fuel =
  let* ws = workloads_of_names names in
  let rec rows acc = function
    | [] -> Ok (List.rev acc)
    | w :: rest ->
      let* p = Harness.prepare_result ?fuel w in
      let bs = Harness.branch_stats p in
      let sp =
        List.hd
          (Harness.Run.on_prepared p
             [ Harness.spec ~segments:true Ilp.Machine.sp ])
      in
      let dists = Ilp.Stats.cumulative_distances sp.segments in
      let under n =
        let rec last acc = function
          | [] -> acc
          | (d, f) :: rest -> if d <= n then last f rest else acc
        in
        100. *. last 0. dists
      in
      let row =
        [ w.Workloads.Registry.name;
          Printf.sprintf "%.2f" bs.rate;
          Printf.sprintf "%.1f" bs.instrs_between;
          string_of_int sp.mispredicts;
          Printf.sprintf "%.1f" (under 100);
          Printf.sprintf "%.1f" (under 1000) ]
      in
      rows (row :: acc) rest
  in
  let* rows = rows [] ws in
  print_string
    (Report.Table.render ~title:"Branch statistics (Table 2 + Figure 6)"
       ~header:
         [ "Program"; "Prediction %"; "Instrs/branch"; "Mispredicts";
           "dist<=100 %"; "dist<=1000 %" ]
       ~align:[ Left; Right; Right; Right; Right; Right ]
       rows);
  Ok ()

(* Listings carry the packed per-pc flags of Program_info, so verifier
   diagnostics (which report pcs and blocks) can be eyeballed against
   the exact facts the analyzer consumes. *)
let print_annotated ~indent flat info pc =
  Format.printf "%s%5d  %s  %a@." indent pc
    (Ilp.Program_info.flags_string info pc)
    Risc.Insn.pp_resolved
    flat.Asm.Program.code.(pc)

let cmd_disasm name =
  let* w = Workloads.Registry.find_result name in
  let* flat = Workloads.Registry.compile_result w in
  let info = Ilp.Program_info.analyze_flat flat in
  Format.printf "flags: B=block-start c/j/C/R/H=kind O=loop-overhead \
                 S=sp-adjust l/s=load/store@.";
  Array.iteri
    (fun p (start, stop) ->
      Format.printf "@.%s:@." flat.Asm.Program.proc_names.(p);
      for pc = start to stop - 1 do
        print_annotated ~indent:"" flat info pc
      done)
    flat.Asm.Program.proc_bounds;
  Ok ()

let cmd_blocks name =
  let* w = Workloads.Registry.find_result name in
  let* flat = Workloads.Registry.compile_result w in
  let cfg = Cfg.Analysis.analyze flat in
  let info = Ilp.Program_info.of_flat flat cfg in
  Array.iter
    (fun (b : Cfg.Graph.block) ->
      Format.printf "block %d (proc %s) [%d,%d) succs=[%s]@." b.id
        flat.Asm.Program.proc_names.(b.proc) b.start b.stop
        (String.concat "," (List.map string_of_int b.succs));
      for pc = b.start to b.stop - 1 do
        print_annotated ~indent:"  " flat info pc
      done)
    cfg.graph.blocks;
  Array.iteri
    (fun b deps ->
      if Array.length deps > 0 then
        Format.printf "block %d control dependent on branches of %s@." b
          (String.concat ","
             (List.map string_of_int (Array.to_list deps))))
    cfg.rdf;
  List.iter
    (fun (l : Cfg.Loops.loop) ->
      Format.printf "loop header=%d blocks=[%s] induction=[%s]@." l.header
        (String.concat "," (List.map string_of_int l.body))
        (String.concat ","
           (List.map
              (fun r -> Format.asprintf "%a" Risc.Reg.pp_uid r)
              l.induction)))
    cfg.loops.loops;
  Ok ()

(* Minimal JSON string for the CLI-level wrappers (the engine renders
   its own report objects). *)
let json_str buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let cmd_check names fuel dynamic warnings_too strict disabled fmt trace_out
    metrics prom_out =
  let* ws = workloads_of_names names in
  let config =
    { Cfg.Engine.default_config with disabled; strict }
  in
  let obs = obs_ctx trace_out metrics prom_out in
  let failed = ref false in
  let results =
    List.map
      (fun w ->
        let r = Harness.check ~config ~obs ?fuel ~dynamic w in
        if r.Harness.c_engine.Cfg.Engine.n_errors > 0 || r.c_dyn_total > 0
        then failed := true;
        r)
      ws
  in
  (match fmt with
  | `Json ->
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"workloads\":[";
    List.iteri
      (fun i (r : Harness.check_result) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf "{\"workload\":";
        json_str buf r.c_workload;
        Buffer.add_string buf ",\"report\":";
        Cfg.Engine.render_json buf r.c_engine;
        if dynamic then begin
          Buffer.add_string buf
            (Printf.sprintf
               ",\"dynamic\":{\"entries\":%d,\"violations\":%d,\"status\":"
               r.c_dyn_entries r.c_dyn_total);
          json_str buf
            (match r.c_status with
            | Some s -> Vm.Exec.status_string s
            | None -> "");
          Buffer.add_string buf "}"
        end;
        Buffer.add_string buf "}")
      results;
    Buffer.add_string buf "]}\n";
    print_string (Buffer.contents buf)
  | `Text ->
    List.iter
      (fun (r : Harness.check_result) ->
        let rep = r.Harness.c_engine in
        if dynamic then
          Format.printf "%-10s %d errors, %d warnings; dynamic: %d entries \
                         checked, %d violations%s@."
            r.c_workload rep.Cfg.Engine.n_errors rep.Cfg.Engine.n_warnings
            r.c_dyn_entries r.c_dyn_total
            (match r.c_status with
            | Some (Vm.Exec.Halted _) | None -> ""
            | Some s -> Printf.sprintf " [%s]" (Vm.Exec.status_string s))
        else
          Format.printf "%-10s %d errors, %d warnings@." r.c_workload
            rep.Cfg.Engine.n_errors rep.Cfg.Engine.n_warnings;
        List.iter
          (fun (d : Cfg.Engine.diag) ->
            if d.d_severity = Cfg.Engine.Error || warnings_too then
              Format.printf "  %a@." Cfg.Engine.pp_diag d)
          rep.Cfg.Engine.diags;
        List.iter
          (fun (v : Cfg.Verify.Dynamic.violation) ->
            Format.printf "  violation at entry %d (pc %d): %s@." v.index
              v.pc v.message)
          r.c_dyn_violations)
      results);
  obs_report ~trace_out ~metrics ~prom_out obs;
  if !failed then err Report (Failed "verification failed") else Ok ()

(* ------------------------------------------------------------------ *)
(* Static parallelism estimates (no execution). *)

let bound_cell (b : Ilp.Static_bound.t) =
  Ilp.Static_bound.value_to_string b.bound
  ^ match b.limiting with Some l -> " (" ^ l ^ ")" | None -> ""

let estimate_json buf (es : Harness.estimated list) =
  Buffer.add_string buf "{\"workloads\":[";
  List.iteri
    (fun i (e : Harness.estimated) ->
      if i > 0 then Buffer.add_char buf ',';
      let est = e.e_est in
      let d, l, x, u = Cfg.Classify.counts est.Cfg.Estimate.classes in
      Buffer.add_string buf "{\"workload\":";
      json_str buf e.e_workload;
      Buffer.add_string buf
        (Printf.sprintf
           ",\"branches\":{\"decided\":%d,\"loop_exit\":%d,\"data\":%d,\
            \"unreachable\":%d},\"max_run\":"
           d l x u);
      (match est.Cfg.Estimate.max_run with
      | Cfg.Estimate.Finite m -> Buffer.add_string buf (string_of_int m)
      | Cfg.Estimate.Unbounded -> Buffer.add_string buf "null");
      Buffer.add_string buf ",\"bounds\":[";
      List.iteri
        (fun j (b : Ilp.Static_bound.t) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf "{\"spec\":";
          json_str buf b.spec;
          Buffer.add_string buf ",\"bound\":";
          if b.bound = infinity then Buffer.add_string buf "null"
          else Buffer.add_string buf (Printf.sprintf "%g" b.bound);
          Buffer.add_string buf ",\"limiting\":";
          (match b.limiting with
          | Some l -> json_str buf l
          | None -> Buffer.add_string buf "null");
          Buffer.add_string buf "}")
        e.e_bounds;
      Buffer.add_string buf "]}")
    es;
  Buffer.add_string buf "]}\n"

let cmd_estimate names machine_names no_inline no_unroll detail fmt =
  let* ws = workloads_of_names names in
  let* machines = Ilp.Machine.of_specs machine_names in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | w :: rest ->
      let* e =
        Harness.estimate ~inline:(not no_inline) ~unroll:(not no_unroll)
          ~machines w
      in
      collect (e :: acc) rest
  in
  let* es = collect [] ws in
  (match fmt with
  | `Json ->
    let buf = Buffer.create 4096 in
    estimate_json buf es;
    print_string (Buffer.contents buf)
  | `Text ->
    let header =
      "Program" :: List.map (fun (m : Ilp.Machine.t) -> m.name) machines
    in
    let rows =
      List.map
        (fun (e : Harness.estimated) ->
          e.e_workload :: List.map bound_cell e.e_bounds)
        es
    in
    print_string
      (Report.Table.render
         ~title:"Static parallelism bounds (no execution)"
         ~header
         ~align:(Left :: List.map (fun _ -> Report.Table.Right) machines)
         rows);
    print_newline ();
    let facts =
      List.map
        (fun (e : Harness.estimated) ->
          let est = e.e_est in
          let d, l, x, u = Cfg.Classify.counts est.Cfg.Estimate.classes in
          [ e.e_workload; string_of_int d; string_of_int l;
            string_of_int x; string_of_int u;
            Cfg.Estimate.bound_to_string est.Cfg.Estimate.max_run ])
        es
    in
    print_string
      (Report.Table.render ~title:"Static facts"
         ~header:
           [ "Program"; "Decided"; "Loop-exit"; "Data-dep"; "Unreach";
             "Max run M" ]
         ~align:[ Left; Right; Right; Right; Right; Right ]
         facts);
    if detail then
      List.iter
        (fun (e : Harness.estimated) ->
          Format.printf "@.%s procedures:@." e.e_workload;
          Array.iter
            (fun (p : Cfg.Estimate.proc_facts) ->
              Format.printf
                "  %-16s counted=%-5d height=%-4d head=%s thru=%s tail=%s \
                 runs=%s@."
                p.pf_name p.pf_counted p.pf_height
                (Cfg.Estimate.bound_to_string p.pf_head)
                (match p.pf_thru with
                | Some b -> Cfg.Estimate.bound_to_string b
                | None -> "-")
                (Cfg.Estimate.bound_to_string p.pf_tail)
                (Cfg.Estimate.bound_to_string p.pf_runs))
            e.e_est.Cfg.Estimate.procs;
          List.iter
            (fun (l : Cfg.Estimate.loop_facts) ->
              Format.printf
                "  loop header=%-4d blocks=%-3d counted=%-4d trip=%s@."
                l.lf_header l.lf_blocks l.lf_counted
                (match l.lf_trip with
                | Some t -> string_of_int t
                | None -> "unbounded"))
            e.e_est.Cfg.Estimate.loops)
        es);
  Ok ()

let cmd_trace name count =
  let* w = Workloads.Registry.find_result name in
  let* flat = Workloads.Registry.compile_result w in
  let outcome = Vm.Exec.run ~fuel:w.Workloads.Registry.fuel flat in
  let trace = outcome.trace in
  let n = min count (Vm.Trace.length trace) in
  for i = 0 to n - 1 do
    let pc = Vm.Trace.pc trace i in
    Format.printf "%8d  %4d  %-30s %s@." i pc
      (Format.asprintf "%a" Risc.Insn.pp_resolved flat.code.(pc))
      (let aux = Vm.Trace.aux trace i in
       if aux < 0 then ""
       else
         match Risc.Insn.kind flat.code.(pc) with
         | Risc.Insn.Cond_branch ->
           if aux = 1 then "taken" else "not-taken"
         | _ -> Printf.sprintf "addr=%d" aux)
  done;
  (match outcome.status with
  | Vm.Exec.Halted _ -> ()
  | s ->
    Format.printf "-- execution ended: %a after %d instructions@."
      Vm.Exec.pp_status s outcome.steps);
  Ok ()

(* ------------------------------------------------------------------ *)
(* Fault injection. *)

let cmd_inject names seed fault_name fuel =
  let* kind = fault_of_name fault_name in
  let* ws = workloads_of_names names in
  let rec go = function
    | [] -> Ok ()
    | w :: rest ->
      let* inj = Harness.inject ?fuel ~seed ~kind w in
      Format.printf "%-10s seed=%d %s@." inj.Harness.i_workload inj.i_seed
        inj.i_description;
      Format.printf "           status=%a steps=%d counted=%d \
                     parallelism=%.2f completeness=%s@."
        Vm.Exec.pp_status inj.i_status inj.i_steps
        inj.i_result.Ilp.Analyze.counted inj.i_result.Ilp.Analyze.parallelism
        (Pipeline_error.completeness_tag
           inj.i_result.Ilp.Analyze.completeness);
      go rest
  in
  go ws

(* With --serve the fuzzer switches target: instead of seeded faults
   through the in-process pipeline, it fires mutated frames at a live
   daemon (Wire_fuzz) and asserts the serve analogue of the same
   invariant — every frame draws a typed error or a clean close, never
   a hang, and the server answers a ping afterwards. *)
let cmd_wire_fuzz ~socket ~seed ~cases =
  let r = Serve.Wire_fuzz.run ~cases ~seed (Serve.Client.Unix_sock socket) in
  Format.printf
    "wire fuzz: %d cases (seed %d): %d structured errors, %d ok replies, \
     %d closed, %d hung, %d unexpected ok, alive=%b@."
    r.Serve.Wire_fuzz.cases seed r.structured r.ok_replies r.closed r.hung
    r.unexpected_ok r.alive;
  if Serve.Wire_fuzz.passed r then Ok ()
  else
    err Report
      (Failed
         (Printf.sprintf
            "wire fuzz violations (%d hung, %d unexpected ok, alive=%b)"
            r.Serve.Wire_fuzz.hung r.unexpected_ok r.alive))

let cmd_fuzz names seed cases fuel jobs scheduler random_machines segments
    serve_sock trace_out metrics prom_out =
  match serve_sock with
  | Some socket -> cmd_wire_fuzz ~socket ~seed ~cases
  | None ->
  let* ws = workloads_of_names names in
  let* scheduler = Cli.Parallel.scheduler_of_flag scheduler in
  let obs = obs_ctx trace_out metrics prom_out in
  let* r =
    Harness.Fuzz.run ?fuel ~workloads:ws ?jobs ~scheduler ~obs
      ~random_machines ~segments ~seed ~cases ()
  in
  obs_report ~trace_out ~metrics ~prom_out obs;
  Format.printf
    "fuzz: %d cases (seed %d): %d complete, %d truncated, %d structured \
     errors, %d internal errors, %d escaped exceptions@."
    r.Harness.Fuzz.cases seed r.complete r.truncated r.structured_errors
    r.internal_errors
    (List.length r.escaped);
  List.iter
    (fun (e : Harness.Fuzz.escaped) ->
      Format.printf "  ESCAPED seed=%d fault=%s workload=%s: %s@." e.e_seed
        (Fault.Injector.kind_name e.e_kind)
        e.e_workload e.e_exn)
    r.escaped;
  if r.escaped <> [] then
    err Report
      (Failed
         (Printf.sprintf "%d exceptions escaped the pipeline barrier"
            (List.length r.escaped)))
  else Ok ()

(* ------------------------------------------------------------------ *)
(* Analysis as a service: the serve daemon and its client. *)

module Protocol = Serve.Protocol
module Jsonx = Serve.Jsonx

let parse_host_port s =
  match String.rindex_opt s ':' with
  | None -> err Lookup (Invalid_request "--tcp wants HOST:PORT")
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 -> Ok (host, p)
    | _ ->
      err Lookup
        (Invalid_request (Printf.sprintf "--tcp: bad port %S" port)))

let parse_admission = function
  | "off" -> Ok Serve.Server.Admit_off
  | s -> (
    match String.index_opt s ':' with
    | Some i -> (
      let mode = String.sub s 0 i in
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      match (mode, float_of_string_opt v) with
      | "reject", Some c when c > 0. -> Ok (Serve.Server.Admit_reject c)
      | "budget", Some c when c > 0. -> Ok (Serve.Server.Admit_budget c)
      | _ ->
        err Lookup
          (Invalid_request
             (Printf.sprintf
                "--admit: %S is not off, reject:CEILING or budget:CEILING"
                s)))
    | None ->
      err Lookup
        (Invalid_request
           (Printf.sprintf
              "--admit: %S is not off, reject:CEILING or budget:CEILING" s)))

let serve_once cfg =
  match Serve.Server.start cfg with
  | Error e -> err Report (Failed ("serve: " ^ e))
  | Ok t ->
    let drain _ = Serve.Server.drain t in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
    Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
    Printf.printf "ilp-limits: serving on %s%s (jobs=%d queue=%d)\n%!"
      cfg.Serve.Server.socket_path
      (match cfg.Serve.Server.tcp with
      | Some (h, p) -> Printf.sprintf " and %s:%d" h p
      | None -> "")
      cfg.Serve.Server.jobs cfg.Serve.Server.queue_limit;
    Serve.Server.wait t;
    Ok ()

(* Crash-only supervision: the parent only forks, waits and restarts;
   the server itself always runs in a disposable child.  SIGTERM and
   SIGINT are forwarded to the child (whose handler drains) and stop
   the restart loop; any other exit is logged and restarted with a
   capped backoff. *)
let supervise cfg =
  let stopping = ref false in
  let child = ref 0 in
  let forward sg = fun _ ->
    stopping := true;
    if !child > 0 then try Unix.kill !child sg with Unix.Unix_error _ -> ()
  in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (forward Sys.sigterm));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (forward Sys.sigint));
  let rec waitpid pid =
    match Unix.waitpid [] pid with
    | _, status -> status
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid pid
  in
  let rec loop restarts =
    if !stopping then Ok ()
    else
      match Unix.fork () with
      | 0 ->
        child := 0;
        Stdlib.exit
          (match serve_once cfg with
          | Ok () -> 0
          | Error e ->
            prerr_endline ("ilp-limits: " ^ Pipeline_error.to_string e);
            Pipeline_error.exit_code e)
      | pid -> (
        child := pid;
        let status = waitpid pid in
        child := 0;
        match status with
        | Unix.WEXITED 0 -> Ok ()
        | _ when !stopping -> Ok ()
        | status ->
          Printf.eprintf "ilp-limits: server %s; restart %d\n%!"
            (let signal_name sg =
               if sg = Sys.sigkill then "SIGKILL"
               else if sg = Sys.sigsegv then "SIGSEGV"
               else if sg = Sys.sigabrt then "SIGABRT"
               else if sg = Sys.sigbus then "SIGBUS"
               else string_of_int sg
             in
             match status with
            | Unix.WEXITED c -> Printf.sprintf "exited %d" c
            | Unix.WSIGNALED sg ->
              Printf.sprintf "killed by signal %s" (signal_name sg)
            | Unix.WSTOPPED sg ->
              Printf.sprintf "stopped by signal %s" (signal_name sg))
            (restarts + 1);
          Unix.sleepf (min 2.0 (0.1 *. float_of_int (1 lsl min restarts 4)));
          loop (restarts + 1))
  in
  loop 0

let cmd_serve socket tcp jobs scheduler queue_limit cache_capacity admit
    max_fuel max_step_budget default_deadline_ms idle_timeout_ms
    retry_after_ms segment_steps supervise_flag =
  let* admission = parse_admission admit in
  let* segment_steps = segmenting_of_flag segment_steps in
  let* scheduler = Cli.Parallel.scheduler_of_flag scheduler in
  let* tcp =
    match tcp with
    | None -> Ok None
    | Some s ->
      let* hp = parse_host_port s in
      Ok (Some hp)
  in
  let cfg =
    Serve.Server.config ?tcp ?jobs ~scheduler ?queue_limit ?cache_capacity
      ~admission ?max_fuel ?max_step_budget ?default_deadline_ms
      ?idle_timeout_ms ?retry_after_ms ~segment_steps ~socket_path:socket ()
  in
  if supervise_flag then supervise cfg else serve_once cfg

let client_addr socket tcp =
  match tcp with
  | None -> Ok (Serve.Client.Unix_sock socket)
  | Some s ->
    let* h, p = parse_host_port s in
    Ok (Serve.Client.Tcp (h, p))

(* The client prints the response object verbatim (metrics unwrap to
   the exposition text) and exits with the error's own [code] field, so
   scripting against a remote daemon sees the same exit discipline as
   the in-process commands. *)
let cmd_client op socket tcp workload source_file machines fuel step_budget
    mem_words deadline_ms inject_kind seed attempts base_ms =
  let* addr = client_addr socket tcp in
  let* make_payload =
    match op with
    | `Ping -> Ok (fun ~id -> Protocol.ping_request ~id)
    | `Stats -> Ok (fun ~id -> Protocol.stats_request ~id)
    | `Metrics -> Ok (fun ~id -> Protocol.metrics_request ~id)
    | `Analyze ->
      let* source =
        match source_file with
        | None -> Ok None
        | Some path -> (
          match In_channel.with_open_bin path In_channel.input_all with
          | s -> Ok (Some s)
          | exception Sys_error e -> err Lookup (Invalid_request e))
      in
      let* () =
        if workload = None && source = None then
          err Lookup
            (Invalid_request "analyze wants --workload or --source-file")
        else Ok ()
      in
      let inject = Option.map (fun k -> (k, seed)) inject_kind in
      let a =
        Protocol.analyze ?source ~machines ?fuel ?step_budget ?mem_words
          ?deadline_ms ?inject ?workload ()
      in
      Ok (fun ~id -> Protocol.analyze_request ~id a)
  in
  match Serve.Client.call_retry ~attempts ~base_ms ~seed addr ~make_payload with
  | Error e -> err Report (Failed ("client: " ^ e))
  | Ok { o_response = r; o_attempts } ->
    if attempts > 1 && o_attempts > 1 then
      Printf.eprintf "ilp-limits: answered after %d attempts\n%!" o_attempts;
    if r.Protocol.r_ok then begin
      (match
         (op, Option.bind (Jsonx.member "metrics" r.r_body) Jsonx.to_str)
       with
      | `Metrics, Some text -> print_string text
      | _ -> print_endline (Jsonx.to_string r.r_body));
      Ok ()
    end
    else begin
      print_endline (Jsonx.to_string r.r_body);
      let code =
        match
          Option.bind
            (Option.bind (Jsonx.member "error" r.r_body)
               (Jsonx.member "code"))
            Jsonx.to_int
        with
        | Some c when c > 0 -> c
        | _ -> 1
      in
      Stdlib.exit code
    end

(* ------------------------------------------------------------------ *)

open Cmdliner

let handle = function
  | Ok () -> 0
  | Error e ->
    prerr_endline ("ilp-limits: " ^ Pipeline_error.to_string e);
    Pipeline_error.exit_code e

let workloads_arg =
  Arg.(value & opt_all string [] & info [ "w"; "workload" ] ~docv:"NAME"
         ~doc:"Workload to use (repeatable; default: all).")

let jobs_arg = Cli.Parallel.jobs_arg
let scheduler_arg = Cli.Parallel.scheduler_arg
let segment_steps_arg = Cli.Parallel.segment_steps_arg ()

let trace_out_arg =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Write the observability trace — one JSON object per line: \
               a span per pipeline stage per workload, then every metric \
               — to $(docv).")

let metrics_arg =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Print the human-readable observability summary (span tree \
               with durations, then metric values) after the report.")

let prom_out_arg =
  Arg.(value & opt (some string) None & info [ "prom-out" ] ~docv:"FILE"
         ~doc:"Write the metrics in Prometheus text exposition format to \
               $(docv).")

let format_arg =
  Arg.(value
       & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
       & info [ "format" ] ~docv:"FMT"
           ~doc:"Output format: $(b,text) (human tables) or $(b,json) \
                 (machine-parseable, one object on stdout).")

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark suite (Table 1).")
    Term.(const (fun () -> handle (cmd_list ())) $ const ())

let machines_cmd =
  let fuzz =
    Arg.(value & opt (some int) None & info [ "fuzz" ] ~docv:"N"
           ~doc:"Instead of listing, fuzz the spec parser over N seeded \
                 random machines: canonical specs must round-trip and \
                 mutated specs must yield typed errors, never \
                 exceptions.  Nonzero exit on any failure.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N"
           ~doc:"Base seed for $(b,--fuzz); same seed, same cases.")
  in
  Cmd.v
    (Cmd.info "machines"
       ~doc:"List the named machine aliases with their canonical spec \
             strings and the machine-spec grammar.")
    Term.(const (fun f s -> handle (cmd_machines f s)) $ fuzz $ seed)

let run_cmd =
  let machines =
    Arg.(value & opt_all string [] & info [ "m"; "machine" ] ~docv:"MACHINE"
           ~doc:"Machine model: a named alias (base, cd, cd-mf, sp, \
                 sp-cd, sp-cd-mf, oracle) or a composed spec such as \
                 $(b,sp-cd-mf,vp,window=256,fetch=4) — see the \
                 $(b,machines) subcommand for the grammar.  Repeatable; \
                 default: all seven paper machines.")
  in
  let no_inline =
    Arg.(value & flag & info [ "no-inline" ]
           ~doc:"Disable simulated perfect inlining.")
  in
  let no_unroll =
    Arg.(value & flag & info [ "no-unroll" ]
           ~doc:"Disable simulated perfect loop unrolling.")
  in
  let fuel =
    Arg.(value & opt (some int) None & info [ "fuel" ] ~docv:"N"
           ~doc:"Cap the trace at N instructions.")
  in
  let stream =
    Arg.(value & flag & info [ "stream" ]
           ~doc:"Stream the trace straight from the VM into the analyzer \
                 (two executions, no materialized trace; memory stays \
                 independent of $(b,--fuel)).")
  in
  let step_budget =
    Arg.(value & opt (some int) None & info [ "step-budget" ] ~docv:"N"
           ~doc:"Resource guard: analyze at most N counted instructions \
                 per machine, then degrade the result to a truncated \
                 (starred) prefix instead of running unboundedly.")
  in
  let mem_words =
    Arg.(value & opt (some int) None & info [ "mem-words" ] ~docv:"N"
           ~doc:"VM data memory size in words (guarded; requests beyond \
                 the cap exit with code 5).")
  in
  let deadline_ms =
    Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Wall-clock budget per workload.  Forces the streaming \
                 path so the clock covers analysis too; expiry degrades \
                 to a typed deadline error (exit code 6), never a hung \
                 run.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Measure parallelism limits (Table 3).")
    Term.(
      const (fun ws ms ni nu f s sb mw dl j ss sch tr mx pr ->
          handle (cmd_run ws ms ni nu f s sb mw dl j ss sch tr mx pr))
      $ workloads_arg $ machines $ no_inline $ no_unroll $ fuel $ stream
      $ step_budget $ mem_words $ deadline_ms $ jobs_arg
      $ segment_steps_arg $ scheduler_arg $ trace_out_arg $ metrics_arg
      $ prom_out_arg)

let stats_cmd =
  let fuel =
    Arg.(value & opt (some int) None & info [ "fuel" ] ~docv:"N"
           ~doc:"Cap the trace at N instructions.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Branch prediction statistics and misprediction distances.")
    Term.(const (fun ws f -> handle (cmd_stats ws f)) $ workloads_arg $ fuel)

let check_cmd =
  let fuel =
    Arg.(value & opt (some int) None & info [ "fuel" ] ~docv:"N"
           ~doc:"Cap the dynamically checked trace at N instructions.")
  in
  let dynamic =
    Arg.(value & flag & info [ "dynamic" ]
           ~doc:"Also execute each workload and cross-check every retired \
                 instruction against the static facts (reachability, CFG \
                 successors, register initialization, induction steps).")
  in
  let warnings_too =
    Arg.(value & flag & info [ "warnings" ]
           ~doc:"Print warnings as well as errors.")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ]
           ~doc:"Promote warnings to errors: any diagnostic fails the \
                 check.")
  in
  let disable =
    Arg.(value & opt_all string [] & info [ "disable" ] ~docv:"PASS"
           ~doc:"Skip a diagnostic pass by name (repeatable), e.g. \
                 $(b,--disable unreachable-block).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Run the static diagnostic passes over workloads; nonzero \
             exit on any error or dynamic violation (with $(b,--strict), \
             on any diagnostic at all).")
    Term.(
      const (fun ws f d v s dis fmt tr mx pr ->
          handle (cmd_check ws f d v s dis fmt tr mx pr))
      $ workloads_arg $ fuel $ dynamic $ warnings_too $ strict $ disable
      $ format_arg $ trace_out_arg $ metrics_arg $ prom_out_arg)

let estimate_cmd =
  let machines =
    Arg.(value & opt_all string [] & info [ "m"; "machine" ] ~docv:"MACHINE"
           ~doc:"Machine model to bound (alias or composed spec; \
                 repeatable; default: all seven paper machines).")
  in
  let no_inline =
    Arg.(value & flag & info [ "no-inline" ]
           ~doc:"Bound without the perfect-inlining assumption.")
  in
  let no_unroll =
    Arg.(value & flag & info [ "no-unroll" ]
           ~doc:"Bound without the perfect-unrolling assumption.")
  in
  let detail =
    Arg.(value & flag & info [ "detail" ]
           ~doc:"Also print per-procedure run summaries and per-loop trip \
                 bounds.")
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Bound oracle parallelism statically — no execution: branch \
             classification (SCCP-decided / known-trip loop exits / \
             data-dependent), the maximum breaker-free run M, and the \
             per-machine bound min(fetch, control) compiled from them.")
    Term.(
      const (fun ws ms ni nu d fmt ->
          handle (cmd_estimate ws ms ni nu d fmt))
      $ workloads_arg $ machines $ no_inline $ no_unroll $ detail
      $ format_arg)

let name_pos =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")

let disasm_cmd =
  Cmd.v (Cmd.info "disasm" ~doc:"Disassemble a compiled workload.")
    Term.(const (fun n -> handle (cmd_disasm n)) $ name_pos)

let blocks_cmd =
  Cmd.v
    (Cmd.info "blocks"
       ~doc:"Dump basic blocks, control dependences and loops.")
    Term.(const (fun n -> handle (cmd_blocks n)) $ name_pos)

let trace_cmd =
  let count =
    Arg.(value & opt int 200 & info [ "n" ] ~docv:"N"
           ~doc:"Number of trace entries to print.")
  in
  Cmd.v (Cmd.info "trace" ~doc:"Print the head of a dynamic trace.")
    Term.(const (fun n c -> handle (cmd_trace n c)) $ name_pos $ count)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N"
         ~doc:"Base seed; the same seed always reproduces the same \
               perturbation and report.")

let inject_fuel =
  Arg.(value & opt (some int) None & info [ "fuel" ] ~docv:"N"
         ~doc:"Instruction budget for the injected execution (default: \
               the workload's own).")

let inject_cmd =
  let fault =
    Arg.(required & opt (some string) None & info [ "fault" ] ~docv:"KIND"
           ~doc:"Fault kind: bit-flip, mem-corrupt, trace-cut or \
                 fuel-cut.")
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:"Run one deterministically injected fault through the full \
             pipeline and report the (completeness-tagged) analysis.")
    Term.(
      const (fun ws s f fu -> handle (cmd_inject ws s f fu))
      $ workloads_arg $ seed_arg $ fault $ inject_fuel)

let fuzz_cmd =
  let cases =
    Arg.(value & opt int 200 & info [ "cases" ] ~docv:"N"
           ~doc:"Number of seeded cases (cycling workloads and fault \
                 kinds).")
  in
  let random_machines =
    Arg.(value & flag & info [ "random-machines" ]
           ~doc:"Analyze each case under a seeded random machine-lattice \
                 point instead of always sp-cd-mf, fuzzing the \
                 compositional machine model end to end.")
  in
  let segments =
    Arg.(value & flag & info [ "segments" ]
           ~doc:"Differential mode: also analyze every perturbed trace \
                 through the segmented (intra-trace parallel) path, \
                 with a per-case segment stride drawn from the seed \
                 stream, and treat any divergence from the sequential \
                 result as an escaped invariant violation.")
  in
  let serve_sock =
    Arg.(value & opt (some string) None & info [ "serve" ] ~docv:"SOCKET"
           ~doc:"Fuzz the wire instead of the pipeline: fire mutated \
                 frames (torn headers, oversized declarations, garbage, \
                 bad shapes) at the daemon on this Unix socket and \
                 require a typed error or clean close for every one — \
                 no hangs, no ok-to-garbage, server alive afterwards.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Bulk seeded fault injection asserting the pipeline \
             invariant: every input yields a result or a structured \
             error.  Nonzero exit if any exception escapes.")
    Term.(
      const (fun ws s c fu j sch rm sg sv tr mx pr ->
          handle (cmd_fuzz ws s c fu j sch rm sg sv tr mx pr))
      $ workloads_arg $ seed_arg $ cases $ inject_fuel $ jobs_arg
      $ scheduler_arg $ random_machines $ segments $ serve_sock
      $ trace_out_arg $ metrics_arg $ prom_out_arg)

let socket_arg =
  Arg.(value & opt string "/tmp/ilp-limits.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket path.")

let tcp_arg ~doc = Arg.(value & opt (some string) None
                        & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let serve_cmd =
  let queue_limit =
    Arg.(value & opt (some int) None & info [ "queue-limit" ] ~docv:"N"
           ~doc:"Backpressure bound: admitted requests waiting for a \
                 domain beyond this are shed with a typed overloaded \
                 error and a retry hint (default 64).")
  in
  let cache =
    Arg.(value & opt (some int) None & info [ "cache" ] ~docv:"N"
           ~doc:"Compiled-program LRU capacity (default 32).")
  in
  let admit =
    Arg.(value & opt string "off" & info [ "admit" ] ~docv:"MODE"
           ~doc:"Admission control: $(b,off), $(b,reject:CEILING) \
                 (refuse requests the static estimator prices above \
                 CEILING — unbounded breaker-free runs price as \
                 infinity), or $(b,budget:CEILING) (clamp their fuel \
                 and step budget instead).")
  in
  let max_fuel =
    Arg.(value & opt (some int) None & info [ "max-fuel" ] ~docv:"N"
           ~doc:"Per-request fuel quota ceiling (default 100M).")
  in
  let max_step_budget =
    Arg.(value & opt (some int) None & info [ "max-step-budget" ] ~docv:"N"
           ~doc:"Per-request analysis-step ceiling (default 100M).")
  in
  let deadline =
    Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Default wall-clock deadline applied to requests that \
                 name none.")
  in
  let idle =
    Arg.(value & opt (some int) None & info [ "idle-timeout-ms" ] ~docv:"MS"
           ~doc:"Self-drain after this long with no connections and no \
                 work.")
  in
  let retry_after =
    Arg.(value & opt (some int) None & info [ "retry-after-ms" ] ~docv:"MS"
           ~doc:"Backoff hint carried by overloaded responses (default \
                 50).")
  in
  let segment_steps =
    Cli.Parallel.segment_steps_arg
      ~doc:
        "Shard each request's trace into $(docv)-instruction segments \
         fanned out across idle worker domains (replies stay \
         bit-identical to un-segmented analysis; $(b,auto) derives the \
         stride from trace length and pool width)."
      ()
  in
  let supervise =
    Arg.(value & flag & info [ "supervise" ]
           ~doc:"Crash-only operation: run the server in a child process \
                 and restart it (capped backoff) on any abnormal exit; \
                 SIGTERM/SIGINT drain the child and stop the loop.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve analysis requests over a Unix-domain socket (and \
             optionally TCP): framed JSON in, a result or a typed error \
             out — with per-request quotas and deadlines, static \
             admission control, bounded-queue backpressure, a \
             compiled-program cache, and graceful drain on \
             SIGTERM/SIGINT.")
    Term.(
      const (fun s t j sch q c a mf msb d i ra ss sup ->
          handle (cmd_serve s t j sch q c a mf msb d i ra ss sup))
      $ socket_arg
      $ tcp_arg ~doc:"Also listen on HOST:PORT."
      $ jobs_arg $ scheduler_arg $ queue_limit $ cache $ admit $ max_fuel
      $ max_step_budget $ deadline $ idle $ retry_after $ segment_steps
      $ supervise)

let client_cmd =
  let op =
    let ops =
      [ ("ping", `Ping); ("stats", `Stats); ("metrics", `Metrics);
        ("analyze", `Analyze) ]
    in
    Arg.(required & pos 0 (some (enum ops)) None & info [] ~docv:"OP"
           ~doc:"One of $(b,ping), $(b,stats), $(b,metrics), \
                 $(b,analyze).")
  in
  let workload =
    Arg.(value & opt (some string) None & info [ "w"; "workload" ]
           ~docv:"NAME" ~doc:"Workload to analyze (registry name).")
  in
  let source_file =
    Arg.(value & opt (some string) None & info [ "source-file" ]
           ~docv:"FILE"
           ~doc:"Analyze ad-hoc Mini-C source read from $(docv) instead \
                 of a registry workload.")
  in
  let machines =
    Arg.(value & opt_all string [] & info [ "m"; "machine" ] ~docv:"MACHINE"
           ~doc:"Machine spec (repeatable; default: the paper seven).")
  in
  let fuel =
    Arg.(value & opt (some int) None & info [ "fuel" ] ~docv:"N"
           ~doc:"Per-request instruction budget.")
  in
  let step_budget =
    Arg.(value & opt (some int) None & info [ "step-budget" ] ~docv:"N"
           ~doc:"Per-request analysis-step budget.")
  in
  let mem_words =
    Arg.(value & opt (some int) None & info [ "mem-words" ] ~docv:"N"
           ~doc:"VM data memory size in words.")
  in
  let deadline =
    Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Per-request wall-clock deadline.")
  in
  let inject =
    Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"KIND"
           ~doc:"Seeded fault to inject server-side (with $(b,--seed)).")
  in
  let attempts =
    Arg.(value & opt int 5 & info [ "retries" ] ~docv:"N"
           ~doc:"Connection attempts before giving up; overloaded \
                 responses retry with the server's hint plus seeded \
                 exponential backoff.")
  in
  let base_ms =
    Arg.(value & opt int 10 & info [ "retry-base-ms" ] ~docv:"MS"
           ~doc:"Base of the exponential backoff between retries.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request to a running serve daemon and print the \
             response; remote typed errors map to the same exit codes \
             as local ones.")
    Term.(
      const (fun o s t w sf m f sb mw d i sd a b ->
          handle (cmd_client o s t w sf m f sb mw d i sd a b))
      $ op $ socket_arg
      $ tcp_arg ~doc:"Connect over TCP instead of the Unix socket."
      $ workload $ source_file $ machines $ fuel $ step_budget $ mem_words
      $ deadline $ inject $ seed_arg $ attempts $ base_ms)

let () =
  let info =
    Cmd.info "ilp-limits" ~version:"1.0.0"
      ~doc:
        "Limits of control flow on parallelism (Lam & Wilson, ISCA 1992): \
         trace-driven limit analysis over seven abstract machines."
  in
  let group =
    Cmd.group info
      [ list_cmd; machines_cmd; run_cmd; stats_cmd; check_cmd;
        estimate_cmd; disasm_cmd; blocks_cmd; trace_cmd; inject_cmd;
        fuzz_cmd; serve_cmd; client_cmd ]
  in
  exit (Cmd.eval' group)

(* Custom machine models: the paper's idealized machines have an
   unlimited scheduling window, unit latencies, and one or unbounded
   flows of control.  This example sweeps the extension knobs on a real
   workload and shows how each idealization matters.

   Every machine in every sweep is analyzed in ONE pass over the trace:
   the sweep builds one spec list, and Harness.Run.on_prepared advances
   all the analysis states together.

     dune exec examples/custom_machine.exe *)

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let rec drop n = function
  | _ :: rest when n > 0 -> drop (n - 1) rest
  | l -> l

let () =
  let w = Workloads.Registry.find "espresso" in
  let p = Harness.prepare w in

  let windows = [ 16; 64; 256; 1024; 4096 ] in
  let flows = [ 1; 2; 4; 8; 16 ] in
  let lat_bases =
    [ Ilp.Machine.base; Ilp.Machine.sp; Ilp.Machine.sp_cd_mf;
      Ilp.Machine.oracle ]
  in

  (* One machine list covering all three sweeps. *)
  let machines =
    List.map (fun wsz -> Ilp.Machine.with_window wsz Ilp.Machine.sp) windows
    @ [ Ilp.Machine.sp ]
    @ List.map
        (fun k -> Ilp.Machine.with_flows (Some k) Ilp.Machine.cd)
        flows
    @ [ Ilp.Machine.cd_mf ]
    @ List.concat_map
        (fun m ->
          [ m; Ilp.Machine.with_latencies Ilp.Machine.realistic_latencies m ])
        lat_bases
  in
  let pars =
    List.map
      (fun (r : Ilp.Analyze.result) -> r.parallelism)
      (Harness.Run.on_prepared p (List.map Harness.spec machines))
  in

  (* 1. Finite scheduling windows on the SP machine: how much of the
     "unlimited window" idealization does a real reorder buffer lose? *)
  let window_pars = take (List.length windows + 1) pars in
  let rows =
    List.map2
      (fun wsz par -> (Printf.sprintf "window %d" wsz, par))
      windows
      (take (List.length windows) window_pars)
    @ [ ("unlimited", List.nth window_pars (List.length windows)) ]
  in
  print_string
    (Report.Chart.bars ~title:"SP parallelism vs scheduling window (espresso)"
       rows);
  print_newline ();

  (* 2. Between one flow of control and unboundedly many: a k-processor
     machine executing k serializing branches per cycle.  The paper's
     CD is k=1 and CD-MF is k=inf; small k answers its closing question
     about small-scale multiprocessors. *)
  let flow_pars =
    take (List.length flows + 1) (drop (List.length windows + 1) pars)
  in
  let rows =
    List.map2
      (fun k par -> (Printf.sprintf "%2d flows" k, par))
      flows
      (take (List.length flows) flow_pars)
    @ [ ("unbounded", List.nth flow_pars (List.length flows)) ]
  in
  print_string
    (Report.Chart.bars
       ~title:"CD parallelism vs flows of control (espresso)" rows);
  print_newline ();

  (* 3. Non-unit latencies: the paper notes unit latency measures "all"
     the parallelism; realistic latencies consume some of it to fill
     pipeline bubbles. *)
  let lat_pars =
    drop (List.length windows + 1 + List.length flows + 1) pars
  in
  let rows =
    List.mapi
      (fun i (m : Ilp.Machine.t) ->
        (m.name, [ List.nth lat_pars (2 * i); List.nth lat_pars ((2 * i) + 1) ]))
      lat_bases
  in
  print_string
    (Report.Chart.grouped_bars
       ~title:"Unit vs realistic latencies (espresso)"
       ~group_names:[ "unit"; "realistic" ]
       rows)

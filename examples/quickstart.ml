(* Quickstart: measure the control-flow parallelism limits of your own
   Mini-C program under the paper's seven abstract machines.

     dune exec examples/quickstart.exe *)

let source =
  {|
// Count primes below 4000 with trial division: a small, branchy
// program with data-dependent control flow.
int is_prime(int n) {
  int d;
  if (n < 2) return 0;
  for (d = 2; d * d <= n; d = d + 1) {
    if (n % d == 0) return 0;
  }
  return 1;
}

int main(void) {
  int n;
  int count = 0;
  for (n = 2; n < 4000; n = n + 1) {
    if (is_prime(n)) count = count + 1;
  }
  return count;
}
|}

let () =
  (* Compile, execute (recording a trace), and analyze. *)
  let prepared = Harness.prepare_source ~name:"primes" source in
  (match prepared.halted with
  | Some v -> Format.printf "program result: %d primes below 4000@." v
  | None -> Format.printf "program did not halt within its fuel budget@.");
  Format.printf "trace: %d dynamic instructions@.@." prepared.steps;
  (* All seven machine models advance together over one trace pass. *)
  let results =
    Harness.Run.on_prepared prepared
      (List.map Harness.spec Ilp.Machine.all_paper)
  in
  let rows =
    List.map
      (fun (r : Ilp.Analyze.result) ->
        [ r.machine;
          string_of_int r.counted;
          string_of_int r.cycles;
          Report.Table.fnum r.parallelism ])
      results
  in
  print_string
    (Report.Table.render ~title:"Parallelism limits for primes"
       ~header:[ "Machine"; "Instructions"; "Cycles"; "Parallelism" ]
       ~align:[ Left; Right; Right; Right ]
       rows);
  print_newline ();
  (* The three techniques at a glance. *)
  let get name =
    (List.find
       (fun (r : Ilp.Analyze.result) -> r.machine = name)
       results)
      .parallelism
  in
  Format.printf
    "control dependence alone:   %.2fx over BASE@."
    (get "CD" /. get "BASE");
  Format.printf
    "+ multiple flows:           %.2fx over BASE@."
    (get "CD-MF" /. get "BASE");
  Format.printf
    "speculation alone:          %.2fx over BASE@."
    (get "SP" /. get "BASE");
  Format.printf
    "all three techniques:       %.2fx over BASE (oracle: %.2fx)@."
    (get "SP-CD-MF" /. get "BASE")
    (get "ORACLE" /. get "BASE")

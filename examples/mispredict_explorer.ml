(* Misprediction structure of a workload (the paper's Figures 6 and 7):
   how far apart mispredicted branches are, and how much parallelism
   lives inside each inter-misprediction segment.

     dune exec examples/mispredict_explorer.exe -- [workload] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "gcc" in
  let w =
    match Workloads.Registry.find name with
    | w -> w
    | exception Not_found ->
      prerr_endline ("unknown workload " ^ name);
      exit 1
  in
  let p = Harness.prepare w in
  let bs = Harness.branch_stats p in
  Format.printf "%s: %d dynamic branches, %.2f%% predicted correctly@."
    w.name bs.dyn_branches bs.rate;

  let sp =
    List.hd
      (Harness.Run.on_prepared p
         [ Harness.spec ~segments:true Ilp.Machine.sp ])
  in
  Format.printf "SP machine: parallelism %.2f with %d mispredictions@.@."
    sp.parallelism sp.mispredicts;

  (* Figure 6: cumulative distribution of misprediction distances. *)
  let curve = Ilp.Stats.cumulative_distances sp.segments in
  print_string
    (Report.Chart.cdf
       ~title:
         (Printf.sprintf "Cumulative misprediction distances (%s)" w.name)
       ~x_label:"distance (instructions)"
       [ curve ]);
  print_newline ();

  (* Figure 7: parallelism inside segments, by distance bucket. *)
  let buckets = Ilp.Stats.parallelism_by_distance sp.segments in
  let rows =
    List.map
      (fun (b : Ilp.Stats.bucket) ->
        ( Printf.sprintf "%5d-%-5d (%6d segs)" b.lo b.hi b.count,
          b.mean_parallelism ))
      buckets
  in
  print_string
    (Report.Chart.bars
       ~title:"Segment parallelism by misprediction distance" rows);
  Format.printf
    "@.Short segments have little parallelism: instructions between@.\
     nearby mispredictions are closely data dependent (paper, Fig. 7).@."
